//! Batch dynamic updates via change propagation (§5.3).
//!
//! A batch of `k` edge insertions/deletions is applied by surgically
//! editing the level-0 records of the endpoints and then repairing the
//! contraction history level by level: at each level, the *frontier* (the
//! set of possibly-affected live vertices) rebuilds its records from the
//! previous level, re-decides its contraction events, rebuilds the
//! clusters of re-contracted vertices, and marks the next level's
//! frontier. Unaffected vertices keep their records, events and clusters.
//!
//! Because the randomized decision rule is a pure function of the 1-hop
//! level state, the repaired structure is **identical to a fresh rebuild**
//! of the new forest with the same seed — which the test suite asserts
//! directly. Expected work is `O(k log(1 + n/k))`, span `O(log² n)`.
//!
//! After the structural repair, a *value-propagation* pass recomputes
//! augmented values on the ancestors of every touched cluster, processing
//! dirty clusters in increasing round order and stopping early when a
//! recomputed aggregate is unchanged.

use crate::aggregate::ClusterAggregate;
use crate::build::UnionFind;
use crate::decide::decide_randomized;
use crate::forest::RcForest;
use crate::types::*;
use rayon::prelude::*;
use std::collections::HashMap;

/// Per-frontier-vertex working state for one level of repair.
struct FrontEntry {
    v: Vertex,
    /// The vertex's record at this level in the *old* history, if it was
    /// live here before the update.
    old_rec: Option<LevelRecord>,
    /// Whether the adjacency part of the record changed.
    rec_changed: bool,
    /// Newly decided event (filled in the decide phase).
    new_event: Event,
}

impl<A: ClusterAggregate> RcForest<A> {
    /// Representative of `v`'s component: the representative vertex of the
    /// root cluster (two vertices are connected iff their representatives
    /// are equal).
    pub fn find_representative(&self, v: Vertex) -> Vertex {
        let mut c = ClusterId::vertex(v);
        loop {
            let p = self.parent_of(c);
            if p.is_none() {
                return c.as_vertex();
            }
            c = p;
        }
    }

    /// Insert a batch of weighted edges in parallel.
    ///
    /// Validates ids, self-loops, duplicates, degree bounds, and acyclicity
    /// (including cycles formed *among* the new edges). `O(k log n)`
    /// validation + `O(k log(1 + n/k))` expected repair work.
    pub fn batch_link(
        &mut self,
        links: &[(Vertex, Vertex, A::EdgeWeight)],
    ) -> Result<(), ForestError> {
        self.validate_links(links, &[])?;
        // Cycle check: union-find over current component representatives.
        let reprs: Vec<(Vertex, Vertex)> = links
            .par_iter()
            .map(|&(u, v, _)| (self.find_representative(u), self.find_representative(v)))
            .collect();
        let mut uf = UnionFind::new(self.n);
        for (i, &(ru, rv)) in reprs.iter().enumerate() {
            if ru == rv || !uf.union(ru, rv) {
                let (u, v, _) = links[i].clone();
                return Err(ForestError::WouldCreateCycle { u, v });
            }
        }
        self.propagate(links, &[]);
        self.bump_version();
        Ok(())
    }

    /// Delete a batch of edges in parallel. Each edge must exist and may
    /// appear only once.
    pub fn batch_cut(&mut self, cuts: &[(Vertex, Vertex)]) -> Result<(), ForestError> {
        self.validate_cuts(cuts)?;
        self.propagate(&[], cuts);
        self.bump_version();
        Ok(())
    }

    /// Apply deletions and insertions in a single change-propagation pass
    /// (the paper's combined update). Degree bounds and edge existence are
    /// checked; **acyclicity of the insertions is the caller's
    /// responsibility** (checking it against the post-deletion forest
    /// would require applying the deletions first — use
    /// [`RcForest::batch_cut`] followed by [`RcForest::batch_link`] when
    /// validation is wanted).
    pub fn batch_update_unchecked(
        &mut self,
        links: &[(Vertex, Vertex, A::EdgeWeight)],
        cuts: &[(Vertex, Vertex)],
    ) -> Result<(), ForestError> {
        self.validate_cuts(cuts)?;
        self.validate_links(links, cuts)?;
        self.propagate(links, cuts);
        self.bump_version();
        Ok(())
    }

    /// Update vertex weights and repropagate augmented values,
    /// `O(k log(1 + n/k))` work. Rejects out-of-range vertices up front
    /// (nothing is applied), so malformed requests cannot panic a serving
    /// loop.
    pub fn update_vertex_weights(
        &mut self,
        updates: &[(Vertex, A::VertexWeight)],
    ) -> Result<(), ForestError> {
        for &(v, _) in updates {
            if v as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v, n: self.n });
            }
        }
        let mut seed = Vec::with_capacity(updates.len());
        for (v, w) in updates {
            self.vertex_weights[*v as usize] = w.clone();
            seed.push(*v);
        }
        self.value_pass(seed);
        self.bump_version();
        Ok(())
    }

    /// Update edge weights and repropagate augmented values. Rejects
    /// missing edges up front (nothing is applied on error).
    pub fn update_edge_weights(
        &mut self,
        updates: &[(Vertex, Vertex, A::EdgeWeight)],
    ) -> Result<(), ForestError> {
        for &(u, v, _) in updates {
            if self.find_base_edge(u, v).is_none() {
                return Err(ForestError::MissingEdge { u, v });
            }
        }
        let mut seed = Vec::with_capacity(updates.len());
        for &(u, v, ref w) in updates {
            let e = self
                .find_base_edge(u, v)
                .ok_or(ForestError::MissingEdge { u, v })?;
            let (a, b) = self.edges.ep[e as usize];
            self.edges.weight[e as usize] = w.clone();
            self.edges.agg[e as usize] = A::base_edge(a, b, w);
            let p = self.edges.parent[e as usize];
            debug_assert!(p.is_vertex());
            seed.push(p.as_vertex());
        }
        self.value_pass(seed);
        self.bump_version();
        Ok(())
    }

    // ---------------------------------------------------------------
    // validation helpers
    // ---------------------------------------------------------------

    fn validate_cuts(&self, cuts: &[(Vertex, Vertex)]) -> Result<(), ForestError> {
        let mut seen = std::collections::HashSet::with_capacity(cuts.len());
        for &(u, v) in cuts {
            if u as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v: u, n: self.n });
            }
            if v as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v, n: self.n });
            }
            if self.find_base_edge(u, v).is_none() {
                return Err(ForestError::MissingEdge { u, v });
            }
            if !seen.insert(rc_parlay::hashtable::edge_key(u, v)) {
                return Err(ForestError::MissingEdge { u, v });
            }
        }
        Ok(())
    }

    fn validate_links(
        &self,
        links: &[(Vertex, Vertex, A::EdgeWeight)],
        cuts: &[(Vertex, Vertex)],
    ) -> Result<(), ForestError> {
        let cut_keys: std::collections::HashSet<u64> = cuts
            .iter()
            .map(|&(u, v)| rc_parlay::hashtable::edge_key(u, v))
            .collect();
        let mut delta: HashMap<Vertex, i32> = HashMap::new();
        for &(u, v) in cuts {
            *delta.entry(u).or_insert(0) -= 1;
            *delta.entry(v).or_insert(0) -= 1;
        }
        let mut seen = std::collections::HashSet::with_capacity(links.len());
        for &(u, v, _) in links {
            if u as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v: u, n: self.n });
            }
            if v as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v, n: self.n });
            }
            if u == v {
                return Err(ForestError::SelfLoop { v });
            }
            let key = rc_parlay::hashtable::edge_key(u, v);
            if !seen.insert(key) {
                return Err(ForestError::DuplicateEdge { u, v });
            }
            if self.find_base_edge(u, v).is_some() && !cut_keys.contains(&key) {
                return Err(ForestError::DuplicateEdge { u, v });
            }
            for x in [u, v] {
                let d = delta.entry(x).or_insert(0);
                *d += 1;
                if self.histories[x as usize][0].degree() as i32 + *d > MAX_DEGREE as i32 {
                    return Err(ForestError::DegreeOverflow { v: x });
                }
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // change propagation
    // ---------------------------------------------------------------

    /// Structural repair: apply the level-0 surgery and repair level by
    /// level. Inputs must be pre-validated.
    fn propagate(&mut self, links: &[(Vertex, Vertex, A::EdgeWeight)], cuts: &[(Vertex, Vertex)]) {
        if links.is_empty() && cuts.is_empty() {
            return;
        }
        // Reserve one epoch per possible level plus slack for growth.
        let max_levels = (self.levels as u64 + 96) * 2;
        let base_epoch = self.marks.new_epochs(max_levels);
        let epoch_of = |level: u32| base_epoch + level as u64;

        // ---- level-0 surgery ----
        let mut frontier: Vec<FrontEntry> = Vec::new();
        let claim0 = |f: &mut Vec<FrontEntry>, marks: &crate::forest::MarkSpace, v: Vertex| {
            if marks.claim(v, epoch_of(0)) {
                f.push(FrontEntry {
                    v,
                    old_rec: None,
                    rec_changed: true,
                    new_event: Event::Live,
                });
            }
        };
        for &(u, v) in cuts {
            claim0(&mut frontier, &self.marks, u);
            claim0(&mut frontier, &self.marks, v);
        }
        for &(u, v, _) in links {
            claim0(&mut frontier, &self.marks, u);
            claim0(&mut frontier, &self.marks, v);
        }
        // Capture pre-surgery records for the frontier.
        for fe in frontier.iter_mut() {
            fe.old_rec = Some(self.histories[fe.v as usize][0]);
        }
        // Apply cuts then links to the level-0 records.
        for &(u, v) in cuts {
            let e = self.find_base_edge(u, v).expect("validated cut");
            self.histories[u as usize][0]
                .adj
                .remove_first(|x| x.nbr == v && !x.raked);
            self.histories[v as usize][0]
                .adj
                .remove_first(|x| x.nbr == u && !x.raked);
            self.edges.release(e);
        }
        let mut new_edge_parents_pending: Vec<u32> = Vec::new();
        for &(u, v, ref w) in links {
            let e = self.edges.alloc(u, v, w.clone());
            new_edge_parents_pending.push(e);
            self.histories[u as usize][0].insert_sorted(AdjEntry {
                nbr: v,
                cluster: ClusterId::edge(e),
                raked: false,
            });
            self.histories[v as usize][0].insert_sorted(AdjEntry {
                nbr: u,
                cluster: ClusterId::edge(e),
                raked: false,
            });
        }
        // Level-0 adjacency slots keep sorted order; `remove_first` uses
        // swap-remove, so restore canonical order.
        for fe in frontier.iter_mut() {
            let rec = &mut self.histories[fe.v as usize][0];
            rec.adj.as_mut_slice().sort_unstable_by_key(|e| e.nbr);
            fe.rec_changed = fe.old_rec.is_none_or(|o| !o.same_adj(rec));
        }

        // ---- repair levels ----
        let mut level: u32 = 0;
        let mut dirty: Vec<Vertex> = Vec::new();
        while !frontier.is_empty() {
            let epoch = epoch_of(level);
            let epoch_next = epoch_of(level + 1);

            // Phase A1 (level > 0): rebuild records for frontier vertices
            // live at this level; detect changes. Level 0 was handled by
            // the surgery above.
            if level > 0 {
                let me: &RcForest<A> = self;
                #[allow(clippy::type_complexity)]
                let rebuilt: Vec<(
                    usize,
                    Option<(LevelRecord, Option<LevelRecord>)>,
                )> = frontier
                    .par_iter()
                    .enumerate()
                    .map(|(i, fe)| {
                        let v = fe.v;
                        let h = &me.histories[v as usize];
                        // Live here in the new history?
                        let live_new = h.len() > (level - 1) as usize
                            && h[(level - 1) as usize].event == Event::Live;
                        if !live_new {
                            return (i, None);
                        }
                        let old_rec = if h.len() > level as usize {
                            Some(h[level as usize])
                        } else {
                            None
                        };
                        let new_rec = me.successor_record(v, level - 1, &|u| {
                            me.histories[u as usize][(level - 1) as usize].event
                        });
                        (i, Some((new_rec, old_rec)))
                    })
                    .collect();
                // Phase A2: commit (drop dead frontier entries, write records).
                let mut kept: Vec<FrontEntry> = Vec::with_capacity(frontier.len());
                for (i, slot) in rebuilt {
                    if let Some((new_rec, old_rec)) = slot {
                        let fe = &frontier[i];
                        let v = fe.v;
                        let h = &mut self.histories[v as usize];
                        let rec_changed = old_rec.is_none_or(|o| !o.same_adj(&new_rec));
                        let mut stored = new_rec;
                        // Preserve the stored event until re-decided (the
                        // decide phase reads retained events of others).
                        stored.event = old_rec.map_or(Event::Live, |o| o.event);
                        if h.len() > level as usize {
                            h[level as usize] = stored;
                        } else {
                            h.push(stored);
                        }
                        kept.push(FrontEntry {
                            v,
                            old_rec,
                            rec_changed,
                            new_event: Event::Live,
                        });
                    }
                }
                frontier = kept;
            }

            // Phase A3: decision-neighbor extension — vertices adjacent to
            // a record-changed vertex re-decide too (their records are
            // unchanged but their decision inputs are not).
            {
                let mut extra: Vec<Vertex> = Vec::new();
                for fe in &frontier {
                    if !fe.rec_changed {
                        continue;
                    }
                    let mut consider = |u: Vertex| {
                        let h = &self.histories[u as usize];
                        let live = h.len() > level as usize
                            && (level == 0 || h[(level - 1) as usize].event == Event::Live)
                            && (h.len() - 1) as u32 >= level;
                        if live && self.marks.claim(u, epoch) {
                            extra.push(u);
                        }
                    };
                    if let Some(o) = &fe.old_rec {
                        for e in o.live() {
                            consider(e.nbr);
                        }
                    }
                    for e in self.histories[fe.v as usize][level as usize].live() {
                        consider(e.nbr);
                    }
                }
                for u in extra {
                    let old = self.histories[u as usize][level as usize];
                    frontier.push(FrontEntry {
                        v: u,
                        old_rec: Some(old),
                        rec_changed: false,
                        new_event: Event::Live,
                    });
                }
            }

            // Phase B: decide. Retained events (non-frontier neighbors)
            // are read from their stored records.
            {
                let me: &RcForest<A> = self;
                let marks = &me.marks;
                let decided: Vec<Event> = frontier
                    .par_iter()
                    .map(|fe| {
                        decide_randomized(me, fe.v, level, &|u| {
                            let h = &me.histories[u as usize];
                            let in_frontier = marks.is_marked(u, epoch);
                            if !in_frontier && h.len() > level as usize {
                                Some(h[level as usize].event)
                            } else {
                                None
                            }
                        })
                    })
                    .collect();
                for (fe, ev) in frontier.iter_mut().zip(decided) {
                    fe.new_event = ev;
                }
            }

            // Phase C: apply — rebuild clusters, persist events, truncate
            // stale histories, and mark the next frontier.
            let mut next_marks: Vec<Vertex> = Vec::new();
            {
                // Pre-compute clusters for re-contracting vertices in
                // parallel (pure reads), then commit serially.
                let me: &RcForest<A> = self;
                let built: Vec<Option<crate::forest::VertexCluster<A>>> = frontier
                    .par_iter()
                    .map(|fe| {
                        let old_event = fe.old_rec.map_or(Event::Live, |o| o.event);
                        let event_changed = fe.old_rec.is_none() || old_event != fe.new_event;
                        if fe.new_event.contracts() && (fe.rec_changed || event_changed) {
                            Some(me.make_cluster(fe.v, level, fe.new_event))
                        } else {
                            None
                        }
                    })
                    .collect();

                let mark_next =
                    |marks: &crate::forest::MarkSpace, out: &mut Vec<Vertex>, u: Vertex| {
                        if marks.claim(u, epoch_next) {
                            out.push(u);
                        }
                    };

                for (i, fe) in frontier.iter().enumerate() {
                    let v = fe.v;
                    let old_event = fe.old_rec.map_or(Event::Live, |o| o.event);
                    let event_changed = fe.old_rec.is_none() || old_event != fe.new_event;
                    if !fe.rec_changed && !event_changed {
                        continue; // converged: nothing changed for v here
                    }
                    // Persist the new event.
                    let old_len = self.histories[v as usize].len();
                    self.histories[v as usize][level as usize].event = fe.new_event;

                    if fe.new_event.contracts() {
                        // Mark the old next-level neighbors before truncating.
                        if old_len > (level + 1) as usize {
                            let old_next = self.histories[v as usize][(level + 1) as usize];
                            for e in old_next.live() {
                                mark_next(&self.marks, &mut next_marks, e.nbr);
                            }
                        }
                        self.histories[v as usize].truncate(level as usize + 1);
                        if let Some(cluster) = built[i].clone() {
                            // Preserve the existing parent pointer: if v's
                            // consumer did not change, it will not rebuild,
                            // and the old pointer is still correct. When the
                            // consumer did change, its own rebuild (at a
                            // strictly later round) overwrites this.
                            let old_parent = self.clusters[v as usize].parent;
                            self.clusters[v as usize] = cluster;
                            if self.clusters[v as usize].kind != ClusterKind::Nullary {
                                self.clusters[v as usize].parent = old_parent;
                            }
                            self.assign_parents_seq(v);
                            dirty.push(v);
                        }
                    } else {
                        // Survivor: must rebuild its next-level record.
                        mark_next(&self.marks, &mut next_marks, v);
                    }
                    if event_changed || fe.rec_changed {
                        // The event (or, for a re-contraction, the changed
                        // record — e.g. a compress with a different far
                        // neighbor) rewires neighbors' next-level records.
                        if let Some(o) = &fe.old_rec {
                            for e in o.live() {
                                mark_next(&self.marks, &mut next_marks, e.nbr);
                            }
                        }
                        for e in self.histories[v as usize][level as usize].live() {
                            mark_next(&self.marks, &mut next_marks, e.nbr);
                        }
                    }
                }
            }

            // Build next frontier.
            frontier = next_marks
                .into_iter()
                .map(|v| FrontEntry {
                    v,
                    old_rec: None,
                    rec_changed: false,
                    new_event: Event::Live,
                })
                .collect();
            level += 1;
            self.levels = self.levels.max(level + 1);
            debug_assert!(
                (level as u64) < max_levels,
                "change propagation failed to converge by level {level}"
            );
        }

        // New base edges now have parents (their consumers re-contracted);
        // seed the value pass with every touched cluster's parent chain.
        let mut seed: Vec<Vertex> = Vec::new();
        for v in dirty {
            let p = self.clusters[v as usize].parent;
            if p.is_vertex() {
                seed.push(p.as_vertex());
            }
        }
        for e in new_edge_parents_pending {
            let p = self.edges.parent[e as usize];
            debug_assert!(p.is_vertex(), "new edge was not consumed by the repair");
            if p.is_vertex() {
                seed.push(p.as_vertex());
            }
        }
        self.value_pass(seed);
    }

    /// Recompute augmented values upward from `seed` clusters, in
    /// increasing round order, stopping where values stabilize.
    pub(crate) fn value_pass(&mut self, seed: Vec<Vertex>) {
        if seed.is_empty() {
            return;
        }
        let epoch = self.marks.new_epochs(1);
        let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); (self.levels + 1) as usize];
        for v in seed {
            if self.marks.claim(v, epoch) {
                buckets[self.cluster(v).round as usize].push(v);
            }
        }
        for r in 0..buckets.len() {
            if buckets[r].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut buckets[r]);
            // Recompute in parallel (pure reads of children), commit serially.
            let me: &RcForest<A> = self;
            let recomputed: Vec<A> = batch.par_iter().map(|&v| me.recompute_agg(v)).collect();
            let mut parents: Vec<Vertex> = Vec::new();
            for (v, agg) in batch.into_iter().zip(recomputed) {
                if self.clusters[v as usize].agg != agg {
                    self.clusters[v as usize].agg = agg;
                    let p = self.clusters[v as usize].parent;
                    if p.is_vertex() {
                        parents.push(p.as_vertex());
                    }
                }
            }
            for p in parents {
                if self.marks.claim(p, epoch) {
                    let pr = self.cluster(p).round as usize;
                    debug_assert!(pr > r);
                    buckets[pr].push(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::SumAgg;
    use crate::forest::BuildOptions;
    use rc_parlay::rng::SplitMix64;

    type F = RcForest<SumAgg<i64>>;

    fn path_edges(n: usize) -> Vec<(u32, u32, i64)> {
        (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1i64)).collect()
    }

    #[test]
    fn link_two_isolated() {
        let mut f = F::new(2);
        f.batch_link(&[(0, 1, 5)]).unwrap();
        f.validate().unwrap();
        f.assert_matches_fresh_rebuild();
        assert_eq!(f.num_edges(), 1);
        assert_eq!(f.find_representative(0), f.find_representative(1));
    }

    #[test]
    fn cut_single_edge() {
        let mut f = F::build_edges(2, &[(0, 1, 5)], BuildOptions::default()).unwrap();
        f.batch_cut(&[(0, 1)]).unwrap();
        f.validate().unwrap();
        f.assert_matches_fresh_rebuild();
        assert_ne!(f.find_representative(0), f.find_representative(1));
        assert_eq!(f.num_edges(), 0);
    }

    #[test]
    fn split_path_in_middle() {
        let mut f = F::build_edges(64, &path_edges(64), BuildOptions::default()).unwrap();
        f.batch_cut(&[(31, 32)]).unwrap();
        f.validate().unwrap();
        f.assert_matches_fresh_rebuild();
        assert_ne!(f.find_representative(0), f.find_representative(63));
        assert_eq!(f.find_representative(0), f.find_representative(31));
    }

    #[test]
    fn relink_path() {
        let mut f = F::build_edges(64, &path_edges(64), BuildOptions::default()).unwrap();
        f.batch_cut(&[(31, 32)]).unwrap();
        f.batch_link(&[(31, 32, 9)]).unwrap();
        f.validate().unwrap();
        f.assert_matches_fresh_rebuild();
        assert_eq!(f.find_representative(0), f.find_representative(63));
    }

    #[test]
    fn batch_of_many_links() {
        // Build a path incrementally in batches and verify each time.
        let n = 128usize;
        let mut f = F::new(n);
        for chunk in path_edges(n).chunks(13) {
            f.batch_link(chunk).unwrap();
            f.validate().unwrap();
            f.assert_matches_fresh_rebuild();
        }
        assert_eq!(f.num_edges(), n - 1);
    }

    #[test]
    fn mixed_update_unchecked() {
        let mut f = F::build_edges(32, &path_edges(32), BuildOptions::default()).unwrap();
        // Reroute in one propagation: cut (15,16), reconnect via (0,31).
        f.batch_update_unchecked(&[(0, 31, 7)], &[(15, 16)])
            .unwrap();
        f.validate().unwrap();
        f.assert_matches_fresh_rebuild();
        assert_eq!(f.find_representative(0), f.find_representative(31));
    }

    #[test]
    fn rejects_cycle_link() {
        let mut f = F::build_edges(8, &path_edges(8), BuildOptions::default()).unwrap();
        assert!(matches!(
            f.batch_link(&[(0, 7, 1)]),
            Err(ForestError::WouldCreateCycle { .. })
        ));
        // Cycle among the new edges themselves.
        let mut g = F::new(3);
        assert!(matches!(
            g.batch_link(&[(0, 1, 1), (1, 2, 1), (2, 0, 1)]),
            Err(ForestError::WouldCreateCycle { .. })
        ));
    }

    #[test]
    fn rejects_missing_cut_and_degree_overflow() {
        let mut f = F::build_edges(8, &path_edges(8), BuildOptions::default()).unwrap();
        assert!(matches!(
            f.batch_cut(&[(0, 5)]),
            Err(ForestError::MissingEdge { .. })
        ));
        assert!(matches!(
            f.batch_link(&[(1, 5, 1), (1, 6, 1)]),
            Err(ForestError::DegreeOverflow { v: 1 })
        ));
    }

    #[test]
    fn version_stamp_counts_mutations() {
        let mut f = F::build_edges(8, &path_edges(8), BuildOptions::default()).unwrap();
        assert_eq!(f.version(), 0);
        f.batch_cut(&[(3, 4)]).unwrap();
        assert_eq!(f.version(), 1);
        f.batch_link(&[(3, 4, 2)]).unwrap();
        assert_eq!(f.version(), 2);
        f.update_vertex_weights(&[(0, 9)]).unwrap();
        f.update_edge_weights(&[(0, 1, 7)]).unwrap();
        assert_eq!(f.version(), 4);
        // Failed updates leave the version (and the weights) untouched.
        assert!(f.update_vertex_weights(&[(0, 1), (99, 1)]).is_err());
        assert!(f.update_edge_weights(&[(0, 7, 1)]).is_err());
        assert!(f.batch_cut(&[(0, 7)]).is_err());
        assert_eq!(f.version(), 4);
        assert_eq!(*f.vertex_weight(0), 9, "failed batch applied nothing");
    }

    #[test]
    fn vertex_weight_updates_propagate() {
        let mut f = F::build_edges(16, &path_edges(16), BuildOptions::default()).unwrap();
        f.update_vertex_weights(&[(3, 100), (12, 50)]).unwrap();
        f.validate().unwrap();
        let root = f.find_representative(0);
        // Total = 15 edges * 1 + 100 + 50.
        assert_eq!(f.cluster(root).agg.total, 15 + 150);
    }

    #[test]
    fn edge_weight_updates_propagate() {
        let mut f = F::build_edges(16, &path_edges(16), BuildOptions::default()).unwrap();
        f.update_edge_weights(&[(7, 8, 41)]).unwrap();
        f.validate().unwrap();
        let root = f.find_representative(0);
        assert_eq!(f.cluster(root).agg.total, 14 + 41);
    }

    #[test]
    fn randomized_stress_matches_rebuild_and_oracle() {
        let n = 96usize;
        let mut f = F::new(n);
        let mut naive = crate::naive::NaiveForest::<i64>::new(n);
        let mut rng = SplitMix64::new(2024);
        for _round in 0..40 {
            // Random batch of links and cuts.
            let mut links: Vec<(u32, u32, i64)> = Vec::new();
            let mut cuts: Vec<(u32, u32)> = Vec::new();
            for _ in 0..6 {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                if u == v {
                    continue;
                }
                if naive.edge_weight(u, v).is_some() {
                    if !cuts.contains(&(u, v)) && !cuts.contains(&(v, u)) {
                        cuts.push((u, v));
                    }
                } else if naive.degree(u) < 3
                    && naive.degree(v) < 3
                    && !naive.connected(u, v)
                    && !links
                        .iter()
                        .any(|&(a, b, _)| (a, b) == (u, v) || (b, a) == (u, v))
                {
                    let w = rng.next_below(100) as i64;
                    links.push((u, v, w));
                }
            }
            // Links must also be acyclic among themselves & disjoint from cuts.
            let mut ok_links: Vec<(u32, u32, i64)> = Vec::new();
            for &(u, v, w) in &links {
                let mut trial = naive.clone();
                for &(a, b, ww) in &ok_links {
                    let _ = trial.link(a, b, ww);
                }
                if trial.link(u, v, w).is_ok() {
                    ok_links.push((u, v, w));
                }
            }
            for &(u, v) in &cuts {
                naive.cut(u, v).unwrap();
            }
            for &(u, v, w) in &ok_links {
                naive.link(u, v, w).unwrap();
            }
            f.batch_cut(&cuts).unwrap();
            f.batch_link(&ok_links).unwrap();
            f.validate()
                .unwrap_or_else(|e| panic!("round {_round}: {e}"));
            f.assert_matches_fresh_rebuild();
            // Connectivity cross-check on a few pairs.
            for _ in 0..10 {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                assert_eq!(
                    f.find_representative(u) == f.find_representative(v),
                    naive.connected(u, v),
                    "connectivity mismatch {u},{v}"
                );
            }
        }
    }
}
