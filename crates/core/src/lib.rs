//! Batch-parallel dynamic trees via RC (rake–compress) trees.
//!
//! Rust implementation of *"Parallel Batch Queries on Dynamic Trees:
//! Algorithms and Experiments"* (Ikram, Brady, Anderson, Blelloch —
//! SPAA 2025): a forest of degree-≤3 trees maintained under batch edge
//! insertions and deletions in `O(k + k log(1 + n/k))` expected work and
//! polylog span, supporting batch connectivity, subtree, path, LCA,
//! path-extrema (via compressed path trees) and nearest-marked-vertex
//! queries in the same work bound.
//!
//! Arbitrary-degree forests are supported through the `rc-ternary` crate;
//! incremental minimum spanning forests through `rc-msf`.
//!
//! # Architecture: the marked-subtree engine
//!
//! All batch queries route through one engine ([`MarkedSweep`], obtained
//! from [`RcForest::marked_sweep`]): start-vertex validation and dedup,
//! the atomic ancestor-marking pass, and generic `top_down` /
//! `bottom_up` visitor passes over the marked subtree, backed by pooled
//! per-forest scratch arenas. Each query family is a visitor plus an
//! `O(1)`-per-query assembly step; the [`queries`] module documents the
//! family table and the uniform `None` contract for invalid entries.
//! Downstream crates can build new batch query kinds on the same engine
//! via [`RcForest::marked_sweep`].
//!
//! # Architecture: the backend trait
//!
//! The [`backend::DynamicForest`] trait fixes one op surface — link/cut,
//! weight/mark updates, and the seven query families over the standard
//! `u64` weight model ([`StdAgg`]) — so RC forests, ternarized forests
//! (`rc-ternary`), link-cut trees (`rc-lct`) and the naive oracle
//! ([`NaiveStdForest`]) are interchangeable for differential testing,
//! stream replay and crossover benchmarks.
//!
//! # Quick start
//!
//! ```
//! use rc_core::{RcForest, SumAgg, BuildOptions};
//!
//! // A weighted path 0-1-2-3.
//! let mut f = RcForest::<SumAgg<i64>>::build_edges(
//!     4, &[(0, 1, 5), (1, 2, 7), (2, 3, 2)], BuildOptions::default()).unwrap();
//! assert_eq!(f.path_aggregate(0, 3), Some(14));
//!
//! // Batch-cut and batch-link.
//! f.batch_cut(&[(1, 2)]).unwrap();
//! assert_eq!(f.path_aggregate(0, 3), None);
//! f.batch_link(&[(0, 3, 1)]).unwrap();
//! assert_eq!(f.path_aggregate(1, 2), Some(8));
//! ```

pub mod aggregate;
pub mod aggregates;
pub mod backend;
mod build;
mod decide;
mod dynamic;
mod forest;
pub mod naive;
pub mod queries;
pub mod state;
pub mod types;
mod validate;

pub use aggregate::{
    AddWeight, ClusterAggregate, GroupPathAggregate, PathAggregate, SubtreeAggregate,
};
pub use aggregates::{
    CountAgg, EdgeRef, ExtremaAgg, MaxEdgeAgg, MinEdgeAgg, Near, NearestMarkedAgg,
    NearestMarkedAggregate, PathSummary, StdAgg, StdVertexWeight, SumAgg, UnitAgg,
};
pub use backend::{DynamicForest, NaiveStdForest};
pub use forest::{BuildOptions, ContractionMode, RcForest, VertexCluster};
pub use queries::cpt::CompressedPathTree;
pub use queries::engine::{MarkedSweep, SweepVals};
pub use state::ForestState;
pub use types::{ClusterId, ClusterKind, Event, ForestError, Vertex, MAX_DEGREE, NO_VERTEX};
