//! LCA queries on dynamic trees (§3.5, §5.7, supplementary A.8).
//!
//! The batch algorithm marks the ancestors of all query vertices, builds a
//! static LCA structure (Euler tour + sparse table) and level-ancestor /
//! highest-unary binary-lifting tables over the **marked subtree only**,
//! computes the top-down `root_boundary` orientation, and answers each
//! query by the casework of A.8:
//!
//! * the *common boundary* `c` (representative of the RC-LCA of `U`, `V`)
//!   is the answer unless the walk to the root departs into one of the
//!   arrival children's cluster paths,
//! * in which case the answer is the vertex on that cluster path closest
//!   to the query vertex — found via the highest unary ancestor.
//!
//! Arbitrary roots reduce to three fixed-root queries XOR-ed together
//! (Lemma A.10). As in the paper, the table construction spends
//! `O(k log(1+n/k) · log)` work — the Berkman–Vishkin structure exists but
//! "has a 2^228 constant factor" (§5.7), so brute-force tables it is.

use crate::aggregate::ClusterAggregate;
use crate::forest::RcForest;
use crate::queries::engine::MarkedSweep;
use crate::types::{ClusterId, ClusterKind, Vertex, NO_VERTEX};
use rayon::prelude::*;
use rc_parlay::NONE_U32;

impl<A: ClusterAggregate> RcForest<A> {
    /// LCA of `u` and `v` in the tree rooted at `r`; `None` when the three
    /// vertices are not in one tree. `O(log n)`.
    pub fn lca(&self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        if u as usize >= self.n || v as usize >= self.n || r as usize >= self.n {
            return None;
        }
        let root = self.find_representative(u);
        if self.find_representative(v) != root || self.find_representative(r) != root {
            return None;
        }
        if u == v || u == r {
            return Some(u);
        }
        if v == r {
            return Some(v);
        }
        let l1 = self.fixed_lca(u, v, root);
        let l2 = self.fixed_lca(u, r, root);
        let l3 = self.fixed_lca(v, r, root);
        // Lemma A.10: two of the three coincide; XOR extracts the answer.
        Some(l1 ^ l2 ^ l3)
    }

    /// LCA of `u`, `v` with respect to the component root representative
    /// `root` (the vertex that contracted last — rep of the root cluster).
    fn fixed_lca(&self, u: Vertex, v: Vertex, root: Vertex) -> Vertex {
        if u == v {
            return u;
        }
        if u == root || v == root {
            return root;
        }
        // Synchronized ascent to the RC-LCA, remembering arrival children.
        let (m, arr_u, arr_v) = self.rc_meet(u, v);
        let c = m;
        if c == root {
            // The meet is the root cluster — also covers D_{u,v,r} ties.
            return self.meet_answer(u, v, m, arr_u, arr_v, NO_VERTEX);
        }
        // Orientation: which boundary of M leads to the root.
        let rb_m = self.root_boundary_single(m);
        self.meet_answer(u, v, m, arr_u, arr_v, rb_m)
    }

    /// Shared fixed-root casework, given the meet cluster rep `m`, the
    /// arrival children (`None` when the respective endpoint *is* `m`),
    /// and `rb_m` = the boundary of `M` toward the root (`NO_VERTEX` when
    /// `M` is the root cluster).
    fn meet_answer(
        &self,
        u: Vertex,
        v: Vertex,
        m: Vertex,
        arr_u: Option<Vertex>,
        arr_v: Option<Vertex>,
        rb_m: Vertex,
    ) -> Vertex {
        let c = m;
        match (arr_u, arr_v) {
            (None, None) => c, // u == v == m (excluded earlier), defensive
            (Some(x), None) => {
                // c == v: is the root on the same side of v as x?
                self.one_sided_answer(u, x, c, rb_m)
            }
            (None, Some(y)) => self.one_sided_answer(v, y, c, rb_m),
            (Some(x), Some(y)) => {
                let between_x = self.c_between(x, rb_m);
                let between_y = self.c_between(y, rb_m);
                if between_x && between_y {
                    c
                } else if !between_x {
                    self.closest_on_cluster_path(x, u)
                } else {
                    self.closest_on_cluster_path(y, v)
                }
            }
        }
    }

    /// Case `c ∈ {u, v}` (A.8): `x` is the child of `C` toward the other
    /// endpoint `w`. If `X` is unary, or the root lies on the opposite
    /// side of `c` from `X`'s cluster path, the LCA is `c`; otherwise it
    /// is the vertex on `X`'s cluster path closest to `w`.
    fn one_sided_answer(&self, w: Vertex, x: Vertex, c: Vertex, rb_m: Vertex) -> Vertex {
        let xc = self.cluster(x);
        if xc.kind != ClusterKind::Binary {
            return c;
        }
        let far = if xc.boundary[0] == c {
            xc.boundary[1]
        } else {
            xc.boundary[0]
        };
        if far != rb_m {
            c
        } else {
            self.closest_on_cluster_path(x, w)
        }
    }

    /// Is `c = rep(M)` on the path from `X`'s contents to the root?
    /// True when `X` is unary (its only exit is `c`) or its far boundary
    /// is not the root boundary of `M`.
    fn c_between(&self, x: Vertex, rb_m: Vertex) -> bool {
        let xc = self.cluster(x);
        if xc.kind != ClusterKind::Binary {
            return true;
        }
        let c_parent = xc.parent;
        debug_assert!(c_parent.is_vertex());
        let c = c_parent.as_vertex();
        let far = if xc.boundary[0] == c {
            xc.boundary[1]
        } else {
            xc.boundary[0]
        };
        far != rb_m
    }

    /// Synchronized ascent from `cluster(u)` and `cluster(v)` to their
    /// RC-LCA. Returns `(rep of meet, arrival child of u-side, arrival
    /// child of v-side)`; an arrival child is `None` when that side's
    /// start cluster *is* the meet.
    fn rc_meet(&self, u: Vertex, v: Vertex) -> (Vertex, Option<Vertex>, Option<Vertex>) {
        let mut cu = u;
        let mut cv = v;
        let mut au: Option<Vertex> = None;
        let mut av: Option<Vertex> = None;
        loop {
            if cu == cv {
                return (cu, au, av);
            }
            let ru = self.cluster(cu).round;
            let rv = self.cluster(cv).round;
            if ru <= rv {
                let p = self.cluster(cu).parent;
                assert!(!p.is_none(), "rc_meet on disconnected vertices");
                au = Some(cu);
                cu = p.as_vertex();
            } else {
                let p = self.cluster(cv).parent;
                assert!(!p.is_none(), "rc_meet on disconnected vertices");
                av = Some(cv);
                cv = p.as_vertex();
            }
        }
    }

    /// `root_boundary` of a single cluster: walk to the root collecting
    /// the chain, then orient downward (`O(log n)`).
    fn root_boundary_single(&self, m: Vertex) -> Vertex {
        let chain = self.chain_to_root(m);
        // chain[last] is the root; compute rb downward.
        let mut rb = NO_VERTEX;
        for i in (0..chain.len() - 1).rev() {
            let p_rep = chain[i + 1];
            let c = self.cluster(chain[i]);
            rb = if rb != NO_VERTEX && (c.boundary[0] == rb || c.boundary[1] == rb) {
                rb
            } else {
                p_rep
            };
        }
        rb
    }

    fn chain_to_root(&self, m: Vertex) -> Vec<Vertex> {
        let mut chain = vec![m];
        let mut c = ClusterId::vertex(m);
        loop {
            let p = self.parent_of(c);
            if p.is_none() {
                return chain;
            }
            chain.push(p.as_vertex());
            c = p;
        }
    }

    /// The vertex on the cluster path of binary cluster `X` closest to the
    /// contained vertex `w` (Lemma A.14): `w` itself if it lies on the
    /// cluster path (no unary cluster on the chain `[W, X)`), else the
    /// boundary of the highest unary cluster on that chain.
    fn closest_on_cluster_path(&self, x: Vertex, w: Vertex) -> Vertex {
        let mut cur = w;
        let mut highest_unary: Option<Vertex> = None;
        while cur != x {
            if self.cluster(cur).kind == ClusterKind::Unary {
                highest_unary = Some(cur);
            }
            let p = self.cluster(cur).parent;
            debug_assert!(p.is_vertex(), "w must be inside X");
            cur = p.as_vertex();
        }
        match highest_unary {
            None => w,
            Some(wu) => self.cluster(wu).boundary[0],
        }
    }

    /// `BatchLCA`: answer `k` arbitrary-root LCA queries `(u, v, r)`,
    /// sharing the marked subtree, its static-LCA tables and the
    /// orientation pass across the whole batch (§3.5). Queries naming an
    /// out-of-range vertex answer `None`.
    pub fn batch_lca(&self, queries: &[(Vertex, Vertex, Vertex)]) -> Vec<Option<Vertex>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let sweep = self.marked_sweep(queries.iter().flat_map(|&(u, v, r)| [u, v, r]));
        if sweep.is_empty() {
            return vec![None; queries.len()];
        }
        let tables = LcaTables::build(self, &sweep);

        queries
            .par_iter()
            .map(|&(u, v, r)| {
                if [u, v, r].iter().any(|&x| !self.in_range(x)) {
                    return None;
                }
                let su = sweep.slot(u);
                let sv = sweep.slot(v);
                let sr = sweep.slot(r);
                let root_u = tables.root_label[su as usize];
                if tables.root_label[sv as usize] != root_u
                    || tables.root_label[sr as usize] != root_u
                {
                    return None;
                }
                if u == v || u == r {
                    return Some(u);
                }
                if v == r {
                    return Some(v);
                }
                let l1 = tables.fixed(self, &sweep, u, v, root_u);
                let l2 = tables.fixed(self, &sweep, u, r, root_u);
                let l3 = tables.fixed(self, &sweep, v, r, root_u);
                Some(l1 ^ l2 ^ l3)
            })
            .collect()
    }
}

/// Static tables over the marked subtree: Euler-tour sparse-table LCA,
/// binary lifting with highest-unary tracking, root labels & orientation.
struct LcaTables {
    depth: Vec<u32>,
    root_label: Vec<Vertex>,
    root_boundary: Vec<Vertex>,
    /// Euler tour as (slot) sequence; `first[slot]` = first occurrence.
    first: Vec<u32>,
    /// Sparse table over the Euler tour of (depth, slot) minima.
    sparse: Vec<Vec<(u32, u32)>>,
    /// Binary lifting: `up[j][slot]` = 2^j-th marked ancestor.
    up: Vec<Vec<u32>>,
    /// `hu[j][slot]` = topmost (minimum-depth) unary cluster among the
    /// window of 2^j nodes starting at `slot` going up.
    hu: Vec<Vec<u32>>,
}

impl LcaTables {
    fn build<A: ClusterAggregate>(f: &RcForest<A>, sweep: &MarkedSweep<'_, A>) -> Self {
        let m = sweep.len();
        // Depth + root labels + orientation via engine top-down passes.
        let root_label = sweep.root_labels();
        let root_boundary = sweep.root_boundary();
        let depth = sweep.top_down(0u32, |s, vals| match sweep.parent(s) {
            None => 0,
            Some(p) => *vals.get(p) + 1,
        });
        // Euler tour (iterative DFS per root).
        let mut euler: Vec<u32> = Vec::with_capacity(2 * m);
        let mut first = vec![NONE_U32; m];
        for &root in sweep.roots() {
            let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
            while let Some(&mut (s, ref mut ci)) = stack.last_mut() {
                if *ci == 0 {
                    first[s as usize] = euler.len() as u32;
                    euler.push(s);
                }
                let kids = sweep.children(s);
                if *ci < kids.len() {
                    let k = kids[*ci];
                    *ci += 1;
                    stack.push((k, 0));
                } else {
                    stack.pop();
                    if let Some(&(ps, _)) = stack.last() {
                        euler.push(ps);
                    }
                }
            }
        }
        // Sparse table of (depth, slot) minima over the Euler tour.
        let e = euler.len().max(1);
        let logs = (usize::BITS - e.leading_zeros()) as usize;
        let mut sparse: Vec<Vec<(u32, u32)>> = Vec::with_capacity(logs);
        sparse.push(euler.iter().map(|&s| (depth[s as usize], s)).collect());
        let mut j = 1;
        while (1 << j) <= e {
            let prev = &sparse[j - 1];
            let mut row = Vec::with_capacity(e - (1 << j) + 1);
            for i in 0..=e - (1 << j) {
                row.push(prev[i].min(prev[i + (1 << (j - 1))]));
            }
            sparse.push(row);
            j += 1;
        }
        // Binary lifting + highest-unary windows.
        let maxd = depth.iter().copied().max().unwrap_or(0) as usize;
        let levels = (usize::BITS - maxd.max(1).leading_zeros()) as usize + 1;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(levels);
        let mut hu: Vec<Vec<u32>> = Vec::with_capacity(levels);
        up.push(
            (0..m as u32)
                .map(|s| sweep.parent(s).unwrap_or(NONE_U32))
                .collect(),
        );
        hu.push(
            (0..m as u32)
                .map(|s| {
                    if f.cluster(sweep.rep(s)).kind == ClusterKind::Unary {
                        s
                    } else {
                        NONE_U32
                    }
                })
                .collect(),
        );
        for j in 1..levels {
            let (upj, huj): (Vec<u32>, Vec<u32>) = (0..m)
                .map(|s| {
                    let half = up[j - 1][s];
                    if half == NONE_U32 {
                        (NONE_U32, hu[j - 1][s])
                    } else {
                        let second = hu[j - 1][half as usize];
                        let combined = if second != NONE_U32 {
                            second
                        } else {
                            hu[j - 1][s]
                        };
                        (up[j - 1][half as usize], combined)
                    }
                })
                .unzip();
            up.push(upj);
            hu.push(huj);
        }
        LcaTables {
            depth,
            root_label,
            root_boundary,
            first,
            sparse,
            up,
            hu,
        }
    }

    /// RC-LCA of two marked slots via the sparse table.
    fn rc_lca(&self, a: u32, b: u32) -> u32 {
        let (mut i, mut j) = (self.first[a as usize], self.first[b as usize]);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let len = (j - i + 1) as usize;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let x = self.sparse[k][i as usize];
        let y = self.sparse[k][j as usize + 1 - (1 << k)];
        x.min(y).1
    }

    /// Marked ancestor of `s` at depth `d` (level ancestor).
    fn level_anc(&self, mut s: u32, d: u32) -> u32 {
        let mut delta = self.depth[s as usize] - d;
        let mut j = 0;
        while delta > 0 {
            if delta & 1 == 1 {
                s = self.up[j][s as usize];
            }
            delta >>= 1;
            j += 1;
        }
        s
    }

    /// Topmost unary cluster on the chain `[from, to)` (`to` exclusive);
    /// `NONE_U32` if none.
    fn highest_unary(&self, from: u32, to: u32) -> u32 {
        let mut steps = self.depth[from as usize] - self.depth[to as usize];
        let mut s = from;
        let mut best = NONE_U32;
        let mut j = 0;
        while steps > 0 {
            if steps & 1 == 1 {
                let cand = self.hu[j][s as usize];
                if cand != NONE_U32 {
                    best = cand; // later windows are higher: overwrite
                }
                s = self.up[j][s as usize];
            }
            steps >>= 1;
            j += 1;
        }
        best
    }

    /// Fixed-root LCA using the precomputed tables.
    fn fixed<A: ClusterAggregate>(
        &self,
        f: &RcForest<A>,
        sweep: &MarkedSweep<'_, A>,
        u: Vertex,
        v: Vertex,
        root: Vertex,
    ) -> Vertex {
        if u == v {
            return u;
        }
        if u == root || v == root {
            return root;
        }
        let su = sweep.slot(u);
        let sv = sweep.slot(v);
        let sm = self.rc_lca(su, sv);
        let m = sweep.rep(sm);
        let dm = self.depth[sm as usize];
        let arr_u = if su == sm {
            None
        } else {
            Some(sweep.rep(self.level_anc(su, dm + 1)))
        };
        let arr_v = if sv == sm {
            None
        } else {
            Some(sweep.rep(self.level_anc(sv, dm + 1)))
        };
        let rb_m = self.root_boundary[sm as usize];

        let closest = |x: Vertex, w: Vertex| -> Vertex {
            let sx = sweep.slot(x);
            let sw = sweep.slot(w);
            let hu = self.highest_unary(sw, sx);
            if hu == NONE_U32 {
                w
            } else {
                f.cluster(sweep.rep(hu)).boundary[0]
            }
        };
        let c = m;
        let one_sided = |w: Vertex, x: Vertex| -> Vertex {
            let xc = f.cluster(x);
            if xc.kind != ClusterKind::Binary {
                return c;
            }
            let far = if xc.boundary[0] == c {
                xc.boundary[1]
            } else {
                xc.boundary[0]
            };
            if far != rb_m {
                c
            } else {
                closest(x, w)
            }
        };
        match (arr_u, arr_v) {
            (None, None) => c,
            (Some(x), None) => one_sided(u, x),
            (None, Some(y)) => one_sided(v, y),
            (Some(x), Some(y)) => {
                let between = |x: Vertex| -> bool {
                    let xc = f.cluster(x);
                    if xc.kind != ClusterKind::Binary {
                        return true;
                    }
                    let far = if xc.boundary[0] == c {
                        xc.boundary[1]
                    } else {
                        xc.boundary[0]
                    };
                    far != rb_m
                };
                let bx = between(x);
                let by = between(y);
                if bx && by {
                    c
                } else if !bx {
                    closest(x, u)
                } else {
                    closest(y, v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::UnitAgg;
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    type F = RcForest<UnitAgg>;

    fn build(n: usize, edges: &[(u32, u32)]) -> F {
        let e: Vec<(u32, u32, ())> = edges.iter().map(|&(u, v)| (u, v, ())).collect();
        F::build_edges(n, &e, BuildOptions::default()).unwrap()
    }

    #[test]
    fn lca_on_small_star() {
        // 1 - 0 - 2, 0 - 3 - 4.
        let f = build(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        assert_eq!(f.lca(1, 2, 4), Some(0));
        assert_eq!(f.lca(1, 4, 2), Some(0));
        assert_eq!(f.lca(4, 0, 1), Some(0));
        assert_eq!(f.lca(4, 3, 3), Some(3));
        assert_eq!(f.lca(1, 1, 4), Some(1));
        assert_eq!(f.lca(2, 4, 4), Some(4));
    }

    #[test]
    fn lca_on_path_all_triples() {
        let n = 10u32;
        let f = build(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        // On a path, LCA(u,v,r) is the median of the three positions.
        for u in 0..n {
            for v in 0..n {
                for r in 0..n {
                    let mut t = [u, v, r];
                    t.sort_unstable();
                    assert_eq!(f.lca(u, v, r), Some(t[1]), "lca({u},{v},{r})");
                }
            }
        }
    }

    #[test]
    fn lca_disconnected() {
        let f = build(4, &[(0, 1), (2, 3)]);
        assert_eq!(f.lca(0, 1, 2), None);
        assert_eq!(f.lca(0, 2, 1), None);
        assert_eq!(f.lca(0, 1, 1), Some(1));
    }

    #[test]
    fn lca_matches_naive_on_random_trees() {
        let n = 200usize;
        let mut rng = SplitMix64::new(99);
        for trial in 0..5 {
            let mut naive = crate::naive::NaiveForest::<u64>::new(n);
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for v in 1..n as u32 {
                let mut u = rng.next_below(v as u64) as u32;
                let mut guard = 0;
                while naive.degree(u) >= 3 && guard < 50 {
                    u = rng.next_below(v as u64) as u32;
                    guard += 1;
                }
                if naive.degree(u) < 3 {
                    naive.link(u, v, 1).unwrap();
                    edges.push((u, v));
                }
            }
            let f = build(n, &edges);
            for _ in 0..400 {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                let r = rng.next_below(n as u64) as u32;
                assert_eq!(
                    f.lca(u, v, r),
                    naive.lca(u, v, r),
                    "trial {trial}: lca({u},{v},{r})"
                );
            }
        }
    }

    #[test]
    fn batch_lca_matches_single() {
        let n = 300usize;
        let mut rng = SplitMix64::new(4242);
        let mut naive = crate::naive::NaiveForest::<u64>::new(n);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 1..n as u32 {
            if rng.next_f64() < 0.05 {
                continue; // some disconnection
            }
            let u = if rng.next_f64() < 0.7 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            if naive.degree(u) < 3 && naive.link(u, v, 1).is_ok() {
                edges.push((u, v));
            }
        }
        let f = build(n, &edges);
        let queries: Vec<(u32, u32, u32)> = (0..500)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let batch = f.batch_lca(&queries);
        for (i, &(u, v, r)) in queries.iter().enumerate() {
            assert_eq!(batch[i], naive.lca(u, v, r), "batch lca({u},{v},{r})");
        }
    }

    #[test]
    fn lca_after_updates() {
        let mut f = build(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
        assert_eq!(f.lca(0, 3, 2), Some(2));
        f.batch_link(&[(3, 4, ())]).unwrap();
        assert_eq!(f.lca(0, 7, 3), Some(3));
        assert_eq!(f.lca(0, 7, 5), Some(5));
        f.batch_cut(&[(2, 3)]).unwrap();
        assert_eq!(f.lca(0, 7, 3), None);
    }
}
