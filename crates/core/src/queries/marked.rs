//! Batch nearest-marked-vertex queries (§3.8, supplementary A.7.1).
//!
//! The forest's augmented values ([`crate::NearestMarkedAgg`], or any
//! composite implementing [`NearestMarkedAggregate`]) maintain, per
//! cluster, the *locally* nearest marked vertices (to the representative
//! and to each boundary). `BatchMark`/`BatchUnmark` are vertex-weight
//! updates propagating in `O(k log(1 + n/k))` work. A query batch runs one
//! [`top_down`](crate::MarkedSweep::top_down) visitor over the marked
//! sweep computing the *globally* nearest marked vertex per marked cluster
//! representative: either the local value, or through a boundary vertex —
//! whose global value is already available because boundaries represent
//! ancestors.

use crate::aggregates::marked::{Near, NearestMarkedAggregate};
use crate::forest::RcForest;
use crate::types::{ClusterKind, ForestError, Vertex, NO_VERTEX};
use rayon::prelude::*;

fn best(a: Near, b: Near) -> Near {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.min(y)),
    }
}

impl<A: NearestMarkedAggregate> RcForest<A> {
    /// Mark vertices (idempotent); `O(k log(1 + n/k))`. Out-of-range
    /// vertices are rejected up front (nothing is applied).
    pub fn batch_mark(&mut self, vs: &[Vertex]) -> Result<(), ForestError> {
        self.set_marks(vs, true)
    }

    /// Unmark vertices; `O(k log(1 + n/k))`.
    pub fn batch_unmark(&mut self, vs: &[Vertex]) -> Result<(), ForestError> {
        self.set_marks(vs, false)
    }

    fn set_marks(&mut self, vs: &[Vertex], marked: bool) -> Result<(), ForestError> {
        for &v in vs {
            if !self.in_range(v) {
                return Err(ForestError::VertexOutOfRange {
                    v,
                    n: self.num_vertices(),
                });
            }
        }
        let updates: Vec<(Vertex, A::VertexWeight)> = vs
            .iter()
            .map(|&v| (v, A::with_mark(self.vertex_weight(v), marked)))
            .collect();
        self.update_vertex_weights(&updates)
    }

    /// Is `v` currently marked? (`false` when out of range.)
    pub fn is_marked_vertex(&self, v: Vertex) -> bool {
        self.in_range(v) && A::is_marked_weight(self.vertex_weight(v))
    }

    /// `BatchNearestMarked`: for each query vertex, the nearest marked
    /// vertex in its tree as `(distance, vertex)`; `None` when its
    /// component has no marks or the query vertex is out of range. Ties
    /// break toward the smaller vertex id.
    pub fn batch_nearest_marked(&self, queries: &[Vertex]) -> Vec<Option<(u64, Vertex)>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let sweep = self.marked_sweep(queries.iter().copied());
        if sweep.is_empty() {
            return vec![None; queries.len()];
        }

        // Top-down: global[slot] = nearest marked vertex anywhere in the
        // tree to this cluster's representative.
        let global = sweep.top_down(None as Near, |s, vals| {
            let c = self.cluster(sweep.rep(s));
            let mut cand = c.agg.nearest().near_rep; // nearest inside
            match c.kind {
                ClusterKind::Nullary => {}
                ClusterKind::Unary => {
                    let b = c.boundary[0];
                    let d = self.agg_of(c.bin_children[0]).nearest().path_len;
                    let gb = *vals.get(sweep.slot(b));
                    cand = best(cand, gb.map(|(dist, x)| (dist + d, x)));
                }
                ClusterKind::Binary => {
                    for i in 0..2 {
                        let b = c.boundary[i];
                        debug_assert_ne!(b, NO_VERTEX);
                        let d = self.agg_of(c.bin_children[i]).nearest().path_len;
                        let gb = *vals.get(sweep.slot(b));
                        cand = best(cand, gb.map(|(dist, x)| (dist + d, x)));
                    }
                }
                ClusterKind::Invalid => unreachable!(),
            }
            cand
        });

        queries
            .par_iter()
            .map(|&v| {
                if !self.in_range(v) {
                    return None;
                }
                global[sweep.slot(v) as usize]
            })
            .collect()
    }

    /// Single-query form of [`batch_nearest_marked`]: the nearest marked
    /// vertex to `v` as `(distance, vertex)`, with the same `None` and
    /// tie-break contract. This is the entry point the serve tier's
    /// independent/sequential dispatch engines use.
    ///
    /// [`batch_nearest_marked`]: Self::batch_nearest_marked
    pub fn nearest_marked(&self, v: Vertex) -> Option<(u64, Vertex)> {
        self.batch_nearest_marked(&[v]).pop().flatten()
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::marked::NearestMarkedAgg;
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    fn build_path(n: u32, w: u64) -> RcForest<NearestMarkedAgg> {
        let edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i, i + 1, w)).collect();
        RcForest::build_edges(n as usize, &edges, BuildOptions::default()).unwrap()
    }

    #[test]
    fn nearest_on_path() {
        let mut f = build_path(10, 1);
        assert_eq!(f.batch_nearest_marked(&[4]), vec![None]);
        f.batch_mark(&[0, 9]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[4]), vec![Some((4, 0))]);
        assert_eq!(f.batch_nearest_marked(&[6]), vec![Some((3, 9))]);
        assert_eq!(f.batch_nearest_marked(&[0]), vec![Some((0, 0))]);
        f.batch_unmark(&[0]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[4]), vec![Some((5, 9))]);
    }

    #[test]
    fn single_matches_batch_of_one() {
        let mut f = build_path(10, 1);
        assert_eq!(f.nearest_marked(4), None);
        f.batch_mark(&[0, 9]).unwrap();
        for v in 0..10u32 {
            assert_eq!(
                Some(f.nearest_marked(v)),
                f.batch_nearest_marked(&[v]).pop()
            );
        }
        assert_eq!(f.nearest_marked(99), None, "out of range => None");
    }

    #[test]
    fn nearest_respects_weights() {
        // 0 -10- 1 -1- 2: vertex 0 and 2 marked; from 1 nearest is 2.
        let edges = vec![(0u32, 1u32, 10u64), (1, 2, 1)];
        let mut f =
            RcForest::<NearestMarkedAgg>::build_edges(3, &edges, BuildOptions::default()).unwrap();
        f.batch_mark(&[0, 2]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[1]), vec![Some((1, 2))]);
    }

    #[test]
    fn nearest_matches_naive_random() {
        let n = 250usize;
        let mut rng = SplitMix64::new(7171);
        let mut naive = crate::naive::NaiveForest::<u64>::new(n);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 1..n as u32 {
            if rng.next_f64() < 0.07 {
                continue;
            }
            let u = if rng.next_f64() < 0.6 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = rng.next_below(20);
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let mut f =
            RcForest::<NearestMarkedAgg>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let mut marked = vec![false; n];
        let marks: Vec<u32> = (0..15).map(|_| rng.next_below(n as u64) as u32).collect();
        for &m in &marks {
            marked[m as usize] = true;
        }
        f.batch_mark(&marks).unwrap();
        f.validate().unwrap();

        let queries: Vec<u32> = (0..300).map(|_| rng.next_below(n as u64) as u32).collect();
        let got = f.batch_nearest_marked(&queries);
        for (i, &q) in queries.iter().enumerate() {
            let expect = naive.nearest_marked(q, &marked);
            // Distances must agree; the witness vertex may differ only on
            // exact ties, which the deterministic tie-break also fixes.
            assert_eq!(
                got[i].map(|x| x.0),
                expect.map(|x| x.0),
                "query {q}: {:?} vs {:?}",
                got[i],
                expect
            );
        }
    }

    #[test]
    fn nearest_after_structure_updates() {
        let mut f = build_path(8, 1);
        f.batch_mark(&[0]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[7]), vec![Some((7, 0))]);
        f.batch_cut(&[(3, 4)]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[7]), vec![None]);
        assert_eq!(f.batch_nearest_marked(&[2]), vec![Some((2, 0))]);
        f.batch_link(&[(3, 4, 100)]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[7]), vec![Some((106, 0))]);
    }
}
