//! Batch path queries over a commutative group (§3.6, supplementary A.6).
//!
//! Semigroup batch path queries have a superlinear lower bound (Tarjan's
//! MST-verification argument), but with inverses the classic root-path
//! trick applies: `path(u,v) = W(u) + W(v) − 2·W(lca(u,v))` where `W(x)`
//! is the weight of the path from the component root to `x`. The `W`
//! values are one [`top_down`](crate::MarkedSweep::top_down) visitor over
//! the marked sweep, oriented by its `root_boundary` pass.
//! `O(k + k log(1 + n/k))` work plus the batch-LCA cost.

use crate::aggregate::GroupPathAggregate;
use crate::forest::RcForest;
use crate::types::{ClusterKind, Vertex, NO_VERTEX};
use rayon::prelude::*;

impl<P: GroupPathAggregate> RcForest<P> {
    /// Batch path sums: for each pair `(u, v)`, the group aggregate of the
    /// edge weights on the `u..v` path (`None` when disconnected or out of
    /// range).
    pub fn batch_path_aggregate(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<P::PathVal>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        // Fixed-root LCAs for all pairs (shares one marked subtree).
        let lcas = self.batch_fixed_lca(pairs);

        // Mark ancestors of u, v and the LCAs; compute root-path weights.
        let sweep = self.marked_sweep(
            pairs
                .iter()
                .enumerate()
                .flat_map(|(i, &(u, v))| [Some(u), Some(v), lcas[i]].into_iter().flatten()),
        );
        if sweep.is_empty() {
            return vec![None; pairs.len()];
        }
        let rb = sweep.root_boundary();

        // Top-down: W[slot] = aggregate from the component root's
        // representative down to this cluster's representative.
        let w = sweep.top_down(None as Option<P::PathVal>, |s, vals| {
            let c = self.cluster(sweep.rep(s));
            let val = match c.kind {
                ClusterKind::Nullary => P::path_identity(),
                ClusterKind::Unary => {
                    let b = c.boundary[0];
                    let wb = vals.get(sweep.slot(b)).clone().expect("ancestor W ready");
                    P::path_combine(&wb, &self.agg_of(c.bin_children[0]).cluster_path())
                }
                ClusterKind::Binary => {
                    // Enter from the boundary on the root side.
                    let q = rb[s as usize];
                    debug_assert_ne!(q, NO_VERTEX);
                    let i = if c.boundary[0] == q { 0 } else { 1 };
                    let wq = vals.get(sweep.slot(q)).clone().expect("ancestor W ready");
                    P::path_combine(&wq, &self.agg_of(c.bin_children[i]).cluster_path())
                }
                ClusterKind::Invalid => unreachable!(),
            };
            Some(val)
        });

        pairs
            .par_iter()
            .enumerate()
            .map(|(i, &(u, v))| {
                let l = lcas[i]?;
                if u == v {
                    return Some(P::path_identity());
                }
                let wu = w[sweep.slot(u) as usize].clone().unwrap();
                let wv = w[sweep.slot(v) as usize].clone().unwrap();
                let wl = w[sweep.slot(l) as usize].clone().unwrap();
                let inv = P::path_inverse(&wl);
                Some(P::path_combine(
                    &P::path_combine(&wu, &wv),
                    &P::path_combine(&inv, &inv),
                ))
            })
            .collect()
    }
}

impl<A: crate::aggregate::ClusterAggregate> RcForest<A> {
    /// Fixed-root LCA (w.r.t. each pair's component root) for a batch of
    /// pairs; `None` when a pair is disconnected or out of range.
    /// Exposed for the path-sum and bottleneck pipelines.
    pub fn batch_fixed_lca(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Vertex>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let starts: Vec<Vertex> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
        // Out-of-range vertices get the NO_VERTEX representative, which
        // never equals a real one — the uniform `None` path.
        let reprs = self.batch_find_representatives(&starts);
        let with_roots: Vec<Option<(Vertex, Vertex, Vertex)>> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| {
                let (ru, rv) = (reprs[2 * i], reprs[2 * i + 1]);
                (ru != NO_VERTEX && ru == rv).then_some((u, v, ru))
            })
            .collect();
        let queries: Vec<(Vertex, Vertex, Vertex)> = with_roots.iter().flatten().copied().collect();
        let answers = self.batch_lca(&queries);
        let mut ai = answers.into_iter();
        with_roots
            .into_iter()
            .map(|q| match q {
                None => None,
                Some(_) => ai.next().unwrap(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::SumAgg;
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    #[test]
    fn batch_path_sums_on_path() {
        let edges: Vec<(u32, u32, i64)> = (0..9).map(|i| (i, i + 1, (i + 1) as i64)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(10, &edges, BuildOptions::default()).unwrap();
        let pairs = vec![(0u32, 9u32), (3, 6), (4, 4), (9, 0)];
        let got = f.batch_path_aggregate(&pairs);
        assert_eq!(got, vec![Some(45), Some(15), Some(0), Some(45)]);
    }

    #[test]
    fn batch_path_out_of_range_is_none() {
        let edges: Vec<(u32, u32, i64)> = (0..4).map(|i| (i, i + 1, 1)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(5, &edges, BuildOptions::default()).unwrap();
        let got = f.batch_path_aggregate(&[(0, 4), (0, 5), (9, 9), (u32::MAX, 0)]);
        assert_eq!(got, vec![Some(4), None, None, None]);
    }

    #[test]
    fn batch_path_matches_single_on_random_forest() {
        let n = 400usize;
        let mut rng = SplitMix64::new(314);
        let mut naive = crate::naive::NaiveForest::<i64>::new(n);
        let mut edges: Vec<(u32, u32, i64)> = Vec::new();
        for v in 1..n as u32 {
            if rng.next_f64() < 0.06 {
                continue;
            }
            let u = if rng.next_f64() < 0.6 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = rng.next_below(100) as i64;
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let f = RcForest::<SumAgg<i64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let pairs: Vec<(u32, u32)> = (0..400)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let got = f.batch_path_aggregate(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(got[i], f.path_aggregate(u, v), "pair ({u},{v})");
        }
    }

    #[test]
    fn batch_path_after_updates() {
        let edges: Vec<(u32, u32, i64)> = (0..7).map(|i| (i, i + 1, 2)).collect();
        let mut f =
            RcForest::<SumAgg<i64>>::build_edges(8, &edges, BuildOptions::default()).unwrap();
        f.batch_cut(&[(3, 4)]).unwrap();
        let got = f.batch_path_aggregate(&[(0, 7), (0, 3), (4, 7)]);
        assert_eq!(got, vec![None, Some(6), Some(6)]);
    }
}
