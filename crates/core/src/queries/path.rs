//! Single path queries (§5.4): aggregate edge weights on the `u..v` path
//! under any commutative monoid — sums, minima, maxima, counts.
//!
//! Two synchronized walks climb from the clusters of `u` and `v`,
//! maintaining the aggregate from the query vertex to each boundary of the
//! current cluster ("when ascending from a binary cluster, we must
//! separately track values of both the boundary vertices"). The walks meet
//! at the RC-LCA, whose representative is the *common boundary* — a vertex
//! the `u..v` path provably crosses. `O(log n)` work and span.

use crate::aggregate::PathAggregate;
use crate::forest::RcForest;
use crate::types::{Vertex, NO_VERTEX};

/// Walk state: the current cluster (by representative) plus path values
/// from the query vertex to the cluster's representative and boundaries.
pub(crate) struct Walk<P: PathAggregate> {
    /// Representative of the current cluster.
    pub rep: Vertex,
    /// Aggregate from the query vertex to `rep`.
    pub rep_val: P::PathVal,
    /// Aggregate from the query vertex to each boundary (aligned with the
    /// cluster's sorted boundary array).
    pub bvals: [Option<P::PathVal>; 2],
}

impl<P: PathAggregate> Walk<P> {
    /// Start a walk at `u`'s own cluster.
    pub(crate) fn start(f: &RcForest<P>, u: Vertex) -> Self {
        let c = f.cluster(u);
        let bval = |i: usize| {
            if c.boundary[i] == NO_VERTEX {
                None
            } else {
                Some(f.agg_of(c.bin_children[i]).cluster_path())
            }
        };
        Walk {
            rep: u,
            rep_val: P::path_identity(),
            bvals: [bval(0), bval(1)],
        }
    }

    /// Path value from the query vertex to boundary vertex `b` of the
    /// current cluster. `None` when `b` is not a boundary of the current
    /// cluster (or its value is absent) — a malformed walk, reported as
    /// `None` per the uniform contract of [`crate::queries`] instead of
    /// panicking under a serving loop.
    pub(crate) fn val_for(&self, f: &RcForest<P>, b: Vertex) -> Option<P::PathVal> {
        let c = f.cluster(self.rep);
        for i in 0..2 {
            if c.boundary[i] == b {
                return self.bvals[i].clone();
            }
        }
        None
    }

    /// Ascend one step to the parent cluster.
    ///
    /// `Some(true)` on a successful step, `Some(false)` at a component
    /// root, `None` when the walk state is inconsistent with the cluster
    /// structure (propagated as a `None` query answer).
    pub(crate) fn ascend(&mut self, f: &RcForest<P>) -> Option<bool> {
        let c = f.cluster(self.rep);
        let parent = c.parent;
        if parent.is_none() {
            return Some(false);
        }
        let p = parent.as_vertex();
        let pv = self.val_for(f, p)?;
        let pc = f.cluster(p);
        let mut bvals: [Option<P::PathVal>; 2] = [None, None];
        for (i, bval) in bvals.iter_mut().enumerate() {
            let b = pc.boundary[i];
            if b == NO_VERTEX {
                continue;
            }
            // If b was already a boundary of the child cluster, its value
            // carries over; otherwise the path reaches b through p and then
            // along the parent's binary child on that side.
            let carried = (0..2)
                .find(|&j| c.boundary[j] == b)
                .and_then(|j| self.bvals[j].clone());
            *bval = Some(match carried {
                Some(x) => x,
                None => P::path_combine(&pv, &f.agg_of(pc.bin_children[i]).cluster_path()),
            });
        }
        self.rep = p;
        self.rep_val = pv;
        self.bvals = bvals;
        Some(true)
    }
}

impl<P: PathAggregate> RcForest<P> {
    /// Aggregate of the edge weights on the path from `u` to `v`
    /// (`None` when disconnected or out of range; the identity when
    /// `u == v`).
    ///
    /// Works for any commutative monoid ([`PathAggregate`]); `O(log n)`.
    pub fn path_aggregate(&self, u: Vertex, v: Vertex) -> Option<P::PathVal> {
        if !self.in_range(u) || !self.in_range(v) {
            return None;
        }
        if u == v {
            return Some(P::path_identity());
        }
        let mut wu = Walk::start(self, u);
        let mut wv = Walk::start(self, v);
        loop {
            if wu.rep == wv.rep {
                return Some(P::path_combine(&wu.rep_val, &wv.rep_val));
            }
            let ru = self.cluster(wu.rep).round;
            let rv = self.cluster(wv.rep).round;
            let (au, av) = if ru < rv {
                (true, false)
            } else if rv < ru {
                (false, true)
            } else {
                (true, true)
            };
            let mut progressed = false;
            if au {
                progressed |= wu.ascend(self)?;
            }
            if av {
                progressed |= wv.ascend(self)?;
            }
            if !progressed {
                return None; // both at (distinct) roots: disconnected
            }
        }
    }

    /// Number of edges on the `u..v` path — available for any aggregate
    /// via a [`crate::CountAgg`]-bearing forest; provided here on the
    /// current aggregate's path monoid when that *is* the hop count.
    pub fn path_exists(&self, u: Vertex, v: Vertex) -> bool {
        self.connected(u, v)
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::{MaxEdgeAgg, MinEdgeAgg, SumAgg};
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    #[test]
    fn path_sum_on_path_graph() {
        let edges: Vec<(u32, u32, i64)> = (0..9).map(|i| (i, i + 1, (i + 1) as i64)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(10, &edges, BuildOptions::default()).unwrap();
        assert_eq!(f.path_aggregate(0, 9), Some(45));
        assert_eq!(f.path_aggregate(3, 6), Some(4 + 5 + 6));
        assert_eq!(f.path_aggregate(4, 4), Some(0));
        assert_eq!(f.path_aggregate(9, 0), Some(45), "symmetric");
    }

    #[test]
    fn path_on_star_and_disconnect() {
        let edges = vec![(0u32, 1u32, 10i64), (0, 2, 20), (0, 3, 30)];
        let f = RcForest::<SumAgg<i64>>::build_edges(5, &edges, BuildOptions::default()).unwrap();
        assert_eq!(f.path_aggregate(1, 2), Some(30));
        assert_eq!(f.path_aggregate(2, 3), Some(50));
        assert_eq!(f.path_aggregate(1, 4), None, "4 is isolated");
    }

    #[test]
    fn path_min_max() {
        let edges = vec![(0u32, 1u32, 5u64), (1, 2, 9), (2, 3, 2)];
        let fmin =
            RcForest::<MinEdgeAgg<u64>>::build_edges(4, &edges, BuildOptions::default()).unwrap();
        let got = fmin.path_aggregate(0, 3).unwrap().unwrap();
        assert_eq!((got.w, got.u, got.v), (2, 2, 3));
        let fmax =
            RcForest::<MaxEdgeAgg<u64>>::build_edges(4, &edges, BuildOptions::default()).unwrap();
        let got = fmax.path_aggregate(0, 3).unwrap().unwrap();
        assert_eq!((got.w, got.u, got.v), (9, 1, 2));
    }

    #[test]
    fn path_sums_match_naive_on_random_forest() {
        let n = 400usize;
        let mut rng = SplitMix64::new(31);
        let mut naive = crate::naive::NaiveForest::<i64>::new(n);
        let mut edges: Vec<(u32, u32, i64)> = Vec::new();
        for v in 1..n as u32 {
            let u = if rng.next_f64() < 0.7 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = rng.next_below(1000) as i64;
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let f = RcForest::<SumAgg<i64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        for _ in 0..300 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            let expect = naive.path_edges(u, v).map(|es| es.iter().sum::<i64>());
            assert_eq!(f.path_aggregate(u, v), expect, "path {u}..{v}");
        }
    }

    #[test]
    fn path_after_updates() {
        let edges: Vec<(u32, u32, i64)> = (0..31).map(|i| (i, i + 1, 1)).collect();
        let mut f =
            RcForest::<SumAgg<i64>>::build_edges(32, &edges, BuildOptions::default()).unwrap();
        f.batch_cut(&[(10, 11)]).unwrap();
        assert_eq!(f.path_aggregate(0, 31), None);
        f.batch_link(&[(0, 31, 100)]).unwrap();
        assert_eq!(f.path_aggregate(10, 11), Some(10 + 100 + 20));
    }
}
