//! Single subtree queries (§5.5).
//!
//! `subtree_aggregate(u, p)` sums the contents (vertices + edges) of the
//! subtree rooted at `u` when the tree is oriented with `p` (a neighbor of
//! `u`) as `u`'s parent. Built on the subtree decomposition property
//! (Theorem 3.4): the subtree is exactly `u` + the children of `U` except
//! the one toward `p`, plus the *subtrees growing out of* `U`'s boundary
//! vertices (except the one shared with the `p`-side child). The
//! growing-out values are computed top-down along `U`'s ancestor chain in
//! `O(log n)`.

use crate::aggregate::SubtreeAggregate;
use crate::forest::RcForest;
use crate::types::{ClusterId, ClusterKind, Vertex, NO_VERTEX};
use std::collections::HashMap;

impl<S: SubtreeAggregate> RcForest<S> {
    /// The child cluster of `U = cluster(u)` in whose direction `p` lies,
    /// plus the boundary vertex of `U` (if any) shared with that child.
    /// `p` must be a current neighbor of `u`.
    pub(crate) fn child_toward(&self, u: Vertex, p: Vertex) -> (ClusterId, Option<Vertex>) {
        let uc = self.cluster(u);
        let final_level = uc.round;
        let rec = self.record(u, final_level);
        // Case 1: p appears in u's final record — either still live when u
        // contracted (the slot holds the base edge {u,p}) or raked onto u.
        for e in rec.adj.iter() {
            if e.nbr == p {
                if e.raked {
                    return (e.cluster, None); // unary child C_p; no shared boundary
                }
                // Base edge {u, p}: p is a boundary of U on that side.
                return (e.cluster, Some(p));
            }
        }
        // Case 2: p compressed before u contracted; climb from C_p to the
        // direct child of U on its chain.
        let me = ClusterId::vertex(u);
        let mut x = ClusterId::vertex(p);
        loop {
            let par = self.parent_of(x);
            debug_assert!(!par.is_none(), "p={p} is not adjacent to u={u}");
            if par == me {
                break;
            }
            x = par;
        }
        // Shared boundary: the far boundary of x (the one that is not u),
        // when x is binary.
        let shared = {
            let xc = self.cluster(x.as_vertex());
            match xc.kind {
                ClusterKind::Binary => Some(if xc.boundary[0] == u {
                    xc.boundary[1]
                } else {
                    xc.boundary[0]
                }),
                _ => None,
            }
        };
        (x, shared)
    }

    /// Ancestor chain of `U = cluster(u)` up to its root cluster
    /// (inclusive), as representatives.
    pub(crate) fn ancestor_chain(&self, u: Vertex) -> Vec<Vertex> {
        let mut chain = vec![u];
        let mut c = ClusterId::vertex(u);
        loop {
            let p = self.parent_of(c);
            if p.is_none() {
                return chain;
            }
            chain.push(p.as_vertex());
            c = p;
        }
    }

    /// Subtree-growing-out values (`OUT(·)`, Lemma A.1) for every boundary
    /// vertex of every cluster on `u`'s ancestor chain, keyed by boundary
    /// vertex. Top-down over the chain: `O(log n)`.
    pub(crate) fn out_values(&self, chain: &[Vertex]) -> HashMap<Vertex, S::SubtreeVal> {
        let mut out: HashMap<Vertex, S::SubtreeVal> = HashMap::new();
        // Process from the root downward; `chain[i+1]` is the parent of
        // `chain[i]`.
        for i in (0..chain.len().saturating_sub(1)).rev() {
            let c_rep = chain[i];
            let p_rep = chain[i + 1];
            let child_id = ClusterId::vertex(c_rep);
            let pc = self.cluster(p_rep);
            let cb = self.cluster(c_rep).boundary;
            // OUT for the boundary of C equal to rep(P): everything beyond
            // p as seen from C — p itself, P's other children, and the
            // subtrees growing out of P's boundaries not shared with C.
            let mut acc = S::vertex_value(p_rep, self.vertex_weight(p_rep));
            for k in pc.children() {
                if k != child_id {
                    acc = S::subtree_combine(&acc, &self.agg_of(k).cluster_total());
                }
            }
            for b in pc.boundary.iter().copied().filter(|&b| b != NO_VERTEX) {
                // Boundaries of P shared with C lie on C's own side.
                if b != cb[0] && b != cb[1] {
                    acc = S::subtree_combine(&acc, &out[&b]);
                }
            }
            out.insert(p_rep, acc);
            // Boundaries C shares with P keep P's values — already in the
            // map from P's own step.
        }
        out
    }

    /// Total aggregate of the subtree rooted at `u` oriented away from its
    /// neighbor `p` (the *direction giver*). Includes `u`'s vertex value
    /// and every vertex/edge strictly inside; excludes the edge `{u, p}`.
    /// Returns `None` when `p` is not currently a neighbor of `u`.
    pub fn subtree_aggregate(&self, u: Vertex, p: Vertex) -> Option<S::SubtreeVal> {
        if u as usize >= self.n || p as usize >= self.n || !self.has_edge(u, p) {
            return None;
        }
        let (toward, excluded_boundary) = self.child_toward(u, p);
        let uc = self.cluster(u);
        let mut acc = S::vertex_value(u, self.vertex_weight(u));
        for k in uc.children() {
            if k != toward {
                acc = S::subtree_combine(&acc, &self.agg_of(k).cluster_total());
            }
        }
        let chain = self.ancestor_chain(u);
        let out = self.out_values(&chain);
        for b in uc.boundary.iter().copied().filter(|&b| b != NO_VERTEX) {
            if Some(b) != excluded_boundary {
                acc = S::subtree_combine(&acc, &out[&b]);
            }
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::{CountAgg, SumAgg};
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    #[test]
    fn subtree_on_path() {
        let edges: Vec<(u32, u32, i64)> = (0..4).map(|i| (i, i + 1, 1)).collect();
        let mut f =
            RcForest::<SumAgg<i64>>::build_edges(5, &edges, BuildOptions::default()).unwrap();
        f.update_vertex_weights(&(0..5u32).map(|v| (v, v as i64 * 10)).collect::<Vec<_>>())
            .unwrap();
        // Subtree of 2 away from 1: vertices {2,3,4} + edges (2,3),(3,4).
        assert_eq!(f.subtree_aggregate(2, 1), Some(20 + 30 + 40 + 2));
        // Subtree of 2 away from 3: vertices {0,1,2} + edges (0,1),(1,2).
        assert_eq!(f.subtree_aggregate(2, 3), Some(10 + 20 + 2));
        assert_eq!(
            f.subtree_aggregate(0, 1),
            Some(0),
            "leaf away from neighbor"
        );
        assert_eq!(f.subtree_aggregate(4, 3), Some(40));
        assert_eq!(
            f.subtree_aggregate(0, 4),
            None,
            "non-neighbor direction giver"
        );
    }

    #[test]
    fn subtree_sizes_on_star() {
        let edges = vec![(0u32, 1u32, ()), (0, 2, ()), (0, 3, ())];
        let f = RcForest::<CountAgg>::build_edges(4, &edges, BuildOptions::default()).unwrap();
        assert_eq!(
            f.subtree_aggregate(0, 1),
            Some((3, 2)),
            "center minus leaf 1"
        );
        assert_eq!(f.subtree_aggregate(1, 0), Some((1, 0)));
    }

    #[test]
    fn subtree_matches_naive_on_random_forests() {
        let n = 300usize;
        let mut rng = SplitMix64::new(77);
        for trial in 0..4 {
            let mut naive = crate::naive::NaiveForest::<i64>::new(n);
            let mut edges: Vec<(u32, u32, i64)> = Vec::new();
            for v in 1..n as u32 {
                if rng.next_f64() < 0.1 {
                    continue; // leave some isolated parts
                }
                let u = if rng.next_f64() < 0.6 {
                    v - 1
                } else {
                    rng.next_below(v as u64) as u32
                };
                let w = rng.next_below(50) as i64;
                if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                    edges.push((u, v, w));
                }
            }
            let mut f =
                RcForest::<SumAgg<i64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
            let vws: Vec<(u32, i64)> = (0..n as u32)
                .map(|v| (v, rng.next_below(30) as i64))
                .collect();
            f.update_vertex_weights(&vws).unwrap();
            let vw_of = |v: u32| vws[v as usize].1;

            let mut checked = 0;
            for _ in 0..600 {
                let u = rng.next_below(n as u64) as u32;
                let nbrs: Vec<u32> = naive.neighbors(u).collect();
                if nbrs.is_empty() {
                    continue;
                }
                let p = nbrs[rng.next_below(nbrs.len() as u64) as usize];
                let (vs, es) = naive.subtree(u, p);
                let expect: i64 =
                    vs.iter().map(|&x| vw_of(x)).sum::<i64>() + es.iter().sum::<i64>();
                assert_eq!(
                    f.subtree_aggregate(u, p),
                    Some(expect),
                    "trial {trial}: subtree({u} away from {p})"
                );
                checked += 1;
            }
            assert!(checked > 100, "too few checks exercised");
        }
    }

    #[test]
    fn subtree_after_updates() {
        let edges: Vec<(u32, u32, i64)> = (0..15).map(|i| (i, i + 1, 1)).collect();
        let mut f =
            RcForest::<SumAgg<i64>>::build_edges(16, &edges, BuildOptions::default()).unwrap();
        f.batch_cut(&[(7, 8)]).unwrap();
        f.batch_link(&[(7, 15, 5)]).unwrap();
        // Tree now: 0..7 path, then 7-15, then 15-14-...-8.
        assert_eq!(f.subtree_aggregate(7, 6), Some(5 + 7));
    }
}
