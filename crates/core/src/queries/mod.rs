//! Query algorithms on RC forests (§3, §5.4–5.8).
//!
//! | module | queries | work (batch of k) |
//! |---|---|---|
//! | [`connectivity`] | `connected`, `batch_connected`, representatives | `O(k log(1+n/k))` |
//! | [`path`] | single path aggregates (any commutative monoid) | `O(log n)` each |
//! | [`subtree`] | single subtree aggregates (semigroup) | `O(log n)` each |
//! | [`subtree_batch`] | batch subtree aggregates | `O(k log(1+n/k))` |
//! | [`lca`] | single + batch LCA (arbitrary roots) | `O(k log n)` (paper's table concession) |
//! | [`path_batch`] | batch path sums (commutative group) | `O(k log(1+n/k))` |
//! | [`cpt`] | compressed path trees | `O(k log(1+n/k))` |
//! | [`bottleneck`] | batch path minima/maxima | `O(k log(1+n/k))` |
//! | [`marked`] | batch nearest-marked-vertex | `O(k log(1+n/k))` |

pub mod connectivity;
pub mod cpt;
pub mod lca;
pub mod marked;
pub mod mark_util;
pub mod path;
pub mod path_batch;
pub mod bottleneck;
pub mod subtree;
pub mod subtree_batch;
