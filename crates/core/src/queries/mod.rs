//! Query algorithms on RC forests (§3, §5.4–5.8).
//!
//! # The marked-subtree engine
//!
//! Every *batch* query family routes through one shared engine
//! ([`engine::MarkedSweep`], obtained from
//! [`RcForest::marked_sweep`](crate::RcForest::marked_sweep)): collect and
//! validate the batch's start vertices, atomically mark their RC-tree
//! ancestors (`O(k log(1 + n/k))` marked clusters, Theorem A.2), then run
//! top-down / bottom-up visitor passes over the marked subtree. A query
//! family contributes only its visitor and an `O(1)`-per-query assembly
//! step:
//!
//! | module | queries | engine passes | work (batch of k) |
//! |---|---|---|---|
//! | [`connectivity`] | `connected`, `batch_connected`, representatives | `root_labels` | `O(k log(1+n/k))` |
//! | [`subtree_batch`] | batch subtree aggregates | OUT-values top-down | `O(k log(1+n/k))` |
//! | [`lca`] | single + batch LCA (arbitrary roots) | `root_labels`, `root_boundary`, depth + static tables | `O(k log n)` (paper's table concession) |
//! | [`path_batch`] | batch path sums (commutative group) | `root_boundary`, root-path-W top-down | `O(k log(1+n/k))` |
//! | [`cpt`] | compressed path trees | exposure bottom-up | `O(k log(1+n/k))` |
//! | [`bottleneck`] | batch path minima/maxima | via [`cpt`] | `O(k log(1+n/k))` |
//! | [`marked`] | batch nearest-marked-vertex | nearest-global top-down | `O(k log(1+n/k))` |
//!
//! Single-vertex-pair variants ([`path`], [`subtree`]) walk one ancestor
//! chain in `O(log n)` and skip the engine.
//!
//! # Uniform `None` contract
//!
//! Batch entry points accept arbitrary vertex ids and never panic on bad
//! input; per-entry results are uniform across families:
//!
//! * **out-of-range vertex** anywhere in an entry → that entry answers
//!   `None` (`false` for `batch_connected`, [`crate::types::NO_VERTEX`]
//!   for `batch_find_representatives`);
//! * **self-pairs** are well-defined: a path query `(u, u)` answers the
//!   identity (empty path), `batch_lca (u, u, r)` answers `u` when
//!   connected to `r`, a subtree query `(u, u)` answers `None` (`u` is
//!   not its own neighbor);
//! * **duplicate entries** are answered independently (marking dedups
//!   internally; results are per-entry);
//! * **disconnected pairs** answer `None`.
//!
//! `compressed_path_tree` is a set construction: out-of-range terminals
//! are ignored rather than reported per-entry.
//!
//! # Error-not-panic updates
//!
//! The mutating entry points (`batch_link`, `batch_cut`,
//! `update_vertex_weights`, `update_edge_weights`, `batch_mark`,
//! `batch_unmark`) validate their whole batch up front and return
//! [`crate::ForestError`] without applying anything on malformed input.
//! Together with the uniform `None` contract above this guarantees that
//! no request a client can phrase — out-of-range ids, self loops,
//! duplicate or missing edges, cycle-closing links — can panic a serving
//! loop built on top of the forest (see the `rc-serve` crate).

pub mod bottleneck;
pub mod connectivity;
pub mod cpt;
pub mod engine;
pub mod lca;
pub mod marked;
pub mod path;
pub mod path_batch;
pub mod subtree;
pub mod subtree_batch;
