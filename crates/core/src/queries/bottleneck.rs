//! Batch path-minima/maxima ("bottleneck") queries (§3.7).
//!
//! Semigroup path queries can't be batched below the MST-verification
//! lower bound, but extrema can: shrink the tree to the compressed path
//! tree of the `O(k)` query endpoints (which preserves pairwise extrema),
//! then solve the static offline problem on the small tree. The paper uses
//! King et al.'s `O(n + k)` MST-verification subroutine; we use
//! Euler-rooting + binary lifting over the compressed tree
//! (`O(k log k)` — one log above, see DESIGN.md §4).

use crate::aggregate::PathAggregate;
use crate::forest::RcForest;
use crate::queries::cpt::CompressedPathTree;
use crate::types::Vertex;
use rayon::prelude::*;
use std::collections::HashMap;

impl<P: PathAggregate> RcForest<P> {
    /// For each pair `(u, v)`, the path-monoid aggregate of the `u..v`
    /// path, computed through a compressed path tree shared across the
    /// batch. With [`crate::MinEdgeAgg`] / [`crate::MaxEdgeAgg`] this is
    /// `BatchPathMin` / `BatchPathMax` — the lightest/heaviest edge with
    /// its endpoints.
    pub fn batch_path_extrema(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<P::PathVal>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut terms = Vec::with_capacity(pairs.len() * 2);
        for &(u, v) in pairs {
            if (u as usize) < self.n && (v as usize) < self.n {
                terms.push(u);
                terms.push(v);
            }
        }
        let cpt = self.compressed_path_tree(&terms);
        let solver = StaticPathSolver::<P>::build(&cpt);
        pairs
            .par_iter()
            .map(|&(u, v)| {
                if u as usize >= self.n || v as usize >= self.n {
                    return None;
                }
                if u == v {
                    return Some(P::path_identity());
                }
                solver.query(u, v)
            })
            .collect()
    }
}

/// Offline static path-aggregate solver over a small tree: rooting by
/// BFS + binary lifting carrying the aggregate toward each ancestor.
pub(crate) struct StaticPathSolver<P: PathAggregate> {
    index: HashMap<Vertex, u32>,
    depth: Vec<u32>,
    comp: Vec<u32>,
    /// `up[j][x]` = 2^j-th ancestor (self when past the root).
    up: Vec<Vec<u32>>,
    /// `agg[j][x]` = aggregate from x up to (excluding) `up[j][x]`.
    agg: Vec<Vec<P::PathVal>>,
}

impl<P: PathAggregate> StaticPathSolver<P> {
    pub(crate) fn build(cpt: &CompressedPathTree<P>) -> Self {
        let n = cpt.vertices.len();
        let mut index = HashMap::with_capacity(n * 2);
        for (i, &v) in cpt.vertices.iter().enumerate() {
            index.insert(v, i as u32);
        }
        let mut adj: Vec<Vec<(u32, P::PathVal)>> = vec![Vec::new(); n];
        for (a, b, w) in &cpt.edges {
            let (ia, ib) = (index[a], index[b]);
            adj[ia as usize].push((ib, w.clone()));
            adj[ib as usize].push((ia, w.clone()));
        }
        // BFS rooting per component.
        let mut parent = vec![u32::MAX; n];
        let mut pw: Vec<P::PathVal> = vec![P::path_identity(); n];
        let mut depth = vec![0u32; n];
        let mut comp = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for s in 0..n as u32 {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = s;
            parent[s as usize] = s;
            order.push(s);
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(x) = q.pop_front() {
                for (y, w) in adj[x as usize].clone() {
                    if comp[y as usize] == u32::MAX {
                        comp[y as usize] = s;
                        parent[y as usize] = x;
                        pw[y as usize] = w;
                        depth[y as usize] = depth[x as usize] + 1;
                        order.push(y);
                        q.push_back(y);
                    }
                }
            }
        }
        // Lifting tables.
        let maxd = depth.iter().copied().max().unwrap_or(0).max(1);
        let levels = (32 - maxd.leading_zeros()) as usize + 1;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(levels);
        let mut agg: Vec<Vec<P::PathVal>> = Vec::with_capacity(levels);
        up.push(parent);
        agg.push(pw);
        for j in 1..levels {
            let (uj, aj): (Vec<u32>, Vec<P::PathVal>) = (0..n)
                .map(|x| {
                    let h = up[j - 1][x];
                    (
                        up[j - 1][h as usize],
                        P::path_combine(&agg[j - 1][x], &agg[j - 1][h as usize]),
                    )
                })
                .unzip();
            up.push(uj);
            agg.push(aj);
        }
        // The root's self-loop aggregates must be identities so lifts past
        // the root are no-ops.
        for agg_level in agg.iter_mut() {
            for x in 0..n {
                if up[0][x] == x as u32 {
                    // roots: ensure identity at all levels
                    agg_level[x] = P::path_identity();
                }
            }
        }
        StaticPathSolver {
            index,
            depth,
            comp,
            up,
            agg,
        }
    }

    pub(crate) fn query(&self, u: Vertex, v: Vertex) -> Option<P::PathVal> {
        let mut x = *self.index.get(&u)?;
        let mut y = *self.index.get(&v)?;
        if self.comp[x as usize] != self.comp[y as usize] {
            return None;
        }
        let mut acc = P::path_identity();
        // Lift to equal depth.
        if self.depth[x as usize] < self.depth[y as usize] {
            std::mem::swap(&mut x, &mut y);
        }
        let mut delta = self.depth[x as usize] - self.depth[y as usize];
        let mut j = 0;
        while delta > 0 {
            if delta & 1 == 1 {
                acc = P::path_combine(&acc, &self.agg[j][x as usize]);
                x = self.up[j][x as usize];
            }
            delta >>= 1;
            j += 1;
        }
        if x == y {
            return Some(acc);
        }
        // Lift both to just below the LCA.
        for j in (0..self.up.len()).rev() {
            if self.up[j][x as usize] != self.up[j][y as usize] {
                acc = P::path_combine(&acc, &self.agg[j][x as usize]);
                acc = P::path_combine(&acc, &self.agg[j][y as usize]);
                x = self.up[j][x as usize];
                y = self.up[j][y as usize];
            }
        }
        acc = P::path_combine(&acc, &self.agg[0][x as usize]);
        acc = P::path_combine(&acc, &self.agg[0][y as usize]);
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::{MaxEdgeAgg, MinEdgeAgg};
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    #[test]
    fn batch_extrema_on_path() {
        let edges: Vec<(u32, u32, u64)> = vec![(0, 1, 5), (1, 2, 9), (2, 3, 2), (3, 4, 7)];
        let f =
            RcForest::<MinEdgeAgg<u64>>::build_edges(5, &edges, BuildOptions::default()).unwrap();
        let got = f.batch_path_extrema(&[(0, 4), (0, 1), (1, 3), (2, 2)]);
        assert_eq!(got[0].unwrap().unwrap().w, 2);
        assert_eq!(got[1].unwrap().unwrap().w, 5);
        assert_eq!(got[2].unwrap().unwrap().w, 2);
        assert_eq!(got[3].unwrap(), None, "empty path has no edges");
    }

    #[test]
    fn batch_extrema_matches_naive() {
        let n = 300usize;
        let mut rng = SplitMix64::new(606);
        let mut naive = crate::naive::NaiveForest::<u64>::new(n);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 1..n as u32 {
            if rng.next_f64() < 0.05 {
                continue;
            }
            let u = if rng.next_f64() < 0.6 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = 1 + rng.next_below(10_000);
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let f =
            RcForest::<MaxEdgeAgg<u64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let pairs: Vec<(u32, u32)> = (0..300)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let got = f.batch_path_extrema(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let expect = naive.path_edges(u, v);
            match (&got[i], expect) {
                (None, None) => {}
                (Some(opt), Some(es)) => {
                    if es.is_empty() {
                        assert!(opt.is_none(), "({u},{v})");
                    } else {
                        assert_eq!(
                            opt.unwrap().w,
                            es.iter().copied().max().unwrap(),
                            "({u},{v})"
                        );
                    }
                }
                (g, e) => panic!("({u},{v}): {g:?} vs {e:?}"),
            }
        }
    }
}
