//! Shared batch-query infrastructure: marking ancestor paths and
//! extracting the marked RC subtree.
//!
//! Every batch query starts the same way (§3.2): walk up from the `O(k)`
//! query clusters, atomically claiming each ancestor ("to prevent a
//! cluster from being marked multiple times, we maintain an atomic counter
//! per cluster", §5.6), stopping at already-claimed nodes. By Theorem A.2
//! the claimed set has `O(k log(1 + n/k))` nodes. The claimed nodes are
//! collected into per-thread buffers (never scanning all `n`), compacted,
//! and organized into a parent/children structure processed level by
//! level (bucketed by contraction round).

use crate::aggregate::ClusterAggregate;
use crate::forest::RcForest;
use crate::types::{ClusterKind, Vertex, NO_VERTEX};
use rc_parlay::{parallel_collect, NONE_U32};
use std::collections::HashMap;

/// The marked subtree of the RC forest induced by a batch query.
pub(crate) struct MarkedSubtree {
    /// Representative vertices of the marked clusters.
    pub nodes: Vec<Vertex>,
    /// Vertex → compact slot.
    pub index: HashMap<Vertex, u32>,
    /// Compact parent (NONE_U32 for roots).
    pub parent: Vec<u32>,
    /// Compact children lists.
    pub children: Vec<Vec<u32>>,
    /// Contraction round per slot.
    #[allow(dead_code)]
    pub round: Vec<u32>,
    /// Slots of root clusters.
    pub roots: Vec<u32>,
    /// Slots bucketed by round (ascending) — bottom-up processing order;
    /// iterate in reverse for top-down.
    pub by_round: Vec<Vec<u32>>,
}

impl MarkedSubtree {
    /// Number of marked clusters.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Compact slot of vertex `v`'s cluster (must be marked).
    pub fn slot(&self, v: Vertex) -> u32 {
        self.index[&v]
    }

    /// Root slot above `slot` — requires `root_of` to have been computed.
    pub fn depth_order_topdown(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.by_round.iter().rev()
    }
}

impl<A: ClusterAggregate> RcForest<A> {
    /// Mark every ancestor cluster of the given start vertices' clusters
    /// and extract the marked subtree. `O(k log(1 + n/k))` expected work.
    pub(crate) fn mark_ancestors(&self, starts: &[Vertex]) -> MarkedSubtree {
        let epoch = self.marks.new_epochs(1);
        let nodes: Vec<Vertex> = parallel_collect(starts.len(), |i, acc| {
            let mut v = starts[i];
            loop {
                if !self.marks.claim(v, epoch) {
                    break; // someone else owns this ancestor path
                }
                acc.push(v);
                let p = self.clusters[v as usize].parent;
                if p.is_none() {
                    break;
                }
                v = p.as_vertex();
            }
        });

        let mut index = HashMap::with_capacity(nodes.len() * 2);
        for (i, &v) in nodes.iter().enumerate() {
            index.insert(v, i as u32);
        }
        let mut parent = vec![NONE_U32; nodes.len()];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        let mut roots = Vec::new();
        let mut round = vec![0u32; nodes.len()];
        let mut max_round = 0;
        for (i, &v) in nodes.iter().enumerate() {
            round[i] = self.clusters[v as usize].round;
            max_round = max_round.max(round[i]);
            let p = self.clusters[v as usize].parent;
            if p.is_none() {
                roots.push(i as u32);
            } else {
                let ps = index[&p.as_vertex()];
                parent[i] = ps;
                children[ps as usize].push(i as u32);
            }
        }
        let mut by_round: Vec<Vec<u32>> = vec![Vec::new(); max_round as usize + 1];
        for i in 0..nodes.len() {
            by_round[round[i] as usize].push(i as u32);
        }
        MarkedSubtree { nodes, index, parent, children, round, roots, by_round }
    }

    /// Top-down `root_boundary` computation over a marked subtree: for
    /// each marked cluster, which of its boundary vertices lies on the
    /// path to the root of its component (`NO_VERTEX` for root clusters).
    ///
    /// This is the orientation oracle used by batch LCA, batch path sums
    /// and Fig. 8's query family — "determining which boundary vertex is
    /// closer to the root can be done using the same top-down computation
    /// as the batch-LCA algorithm" (supplementary A.6).
    pub(crate) fn root_boundary(&self, ms: &MarkedSubtree) -> Vec<Vertex> {
        let mut rb = vec![NO_VERTEX; ms.len()];
        for bucket in ms.depth_order_topdown() {
            for &s in bucket {
                let ps = ms.parent[s as usize];
                if ps == NONE_U32 {
                    continue; // root: no boundary
                }
                let p_rep = ms.nodes[ps as usize];
                let q = rb[ps as usize];
                let c = &self.clusters[ms.nodes[s as usize] as usize];
                rb[s as usize] = if q != NO_VERTEX && (c.boundary[0] == q || c.boundary[1] == q)
                {
                    q
                } else {
                    p_rep
                };
            }
        }
        rb
    }

    /// Top-down component-root labels: for each marked cluster, the
    /// representative vertex of its root cluster.
    pub(crate) fn root_labels(&self, ms: &MarkedSubtree) -> Vec<Vertex> {
        let mut lab = vec![NO_VERTEX; ms.len()];
        for bucket in ms.depth_order_topdown() {
            for &s in bucket {
                let ps = ms.parent[s as usize];
                lab[s as usize] = if ps == NONE_U32 {
                    ms.nodes[s as usize]
                } else {
                    lab[ps as usize]
                };
            }
        }
        lab
    }

}

// `ClusterKind` is used by downstream query modules via this re-export
// point; keep the import exercised.
const _: fn() = || {
    let _ = ClusterKind::Unary;
};
