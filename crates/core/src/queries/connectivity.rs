//! Batch connectivity queries (§3.3).
//!
//! Reduces to batch find-representative on the marked-subtree engine: one
//! [`RcForest::marked_sweep`] over the query vertices, a top-down
//! `root_labels` pass, and a per-query lookup. `O(k + k log(1 + n/k))`
//! work, `O(log n)` span (Theorem 3.5).

use crate::aggregate::ClusterAggregate;
use crate::forest::RcForest;
use crate::types::{Vertex, NO_VERTEX};
use rc_parlay::parallel_for;
use rc_parlay::slice::ParSlice;

impl<A: ClusterAggregate> RcForest<A> {
    /// Are `u` and `v` in the same tree? (`O(log n)`; `false` when either
    /// vertex is out of range.)
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        if !self.in_range(u) || !self.in_range(v) {
            return false;
        }
        self.find_representative(u) == self.find_representative(v)
    }

    /// Component representatives for a batch of vertices, sharing ancestor
    /// walks across the batch. Out-of-range vertices map to
    /// [`NO_VERTEX`].
    pub fn batch_find_representatives(&self, vs: &[Vertex]) -> Vec<Vertex> {
        if vs.is_empty() {
            return Vec::new();
        }
        let sweep = self.marked_sweep(vs.iter().copied());
        let labels = sweep.root_labels();
        let mut out = vec![NO_VERTEX; vs.len()];
        {
            let po = ParSlice::new(&mut out);
            parallel_for(vs.len(), |i| {
                if self.in_range(vs[i]) {
                    // SAFETY: one write per output slot.
                    unsafe { po.write(i, labels[sweep.slot(vs[i]) as usize]) };
                }
            });
        }
        out
    }

    /// `BatchConnected`: answer `k` connectivity queries in
    /// `O(k + k log(1 + n/k))` work. Pairs naming out-of-range vertices
    /// answer `false`.
    pub fn batch_connected(&self, pairs: &[(Vertex, Vertex)]) -> Vec<bool> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut starts = Vec::with_capacity(pairs.len() * 2);
        for &(u, v) in pairs {
            starts.push(u);
            starts.push(v);
        }
        let reprs = self.batch_find_representatives(&starts);
        (0..pairs.len())
            .map(|i| reprs[2 * i] != NO_VERTEX && reprs[2 * i] == reprs[2 * i + 1])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::SumAgg;
    use crate::forest::{BuildOptions, RcForest};
    use crate::types::NO_VERTEX;

    type F = RcForest<SumAgg<i64>>;

    fn two_paths() -> F {
        // 0-1-2-3 and 4-5-6.
        let edges = vec![(0, 1, 1i64), (1, 2, 1), (2, 3, 1), (4, 5, 1), (5, 6, 1)];
        F::build_edges(7, &edges, BuildOptions::default()).unwrap()
    }

    #[test]
    fn connected_within_and_across() {
        let f = two_paths();
        assert!(f.connected(0, 3));
        assert!(f.connected(4, 6));
        assert!(!f.connected(0, 4));
        assert!(f.connected(2, 2));
    }

    #[test]
    fn batch_connected_matches_single() {
        let f = two_paths();
        let pairs = vec![(0, 3), (0, 4), (5, 6), (6, 1), (2, 0)];
        let got = f.batch_connected(&pairs);
        let expect: Vec<bool> = pairs.iter().map(|&(u, v)| f.connected(u, v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn batch_reprs_constant_per_component() {
        let f = two_paths();
        let reprs = f.batch_find_representatives(&[0, 1, 2, 3, 4, 5, 6]);
        assert!(reprs[0..4].iter().all(|&r| r == reprs[0]));
        assert!(reprs[4..7].iter().all(|&r| r == reprs[4]));
        assert_ne!(reprs[0], reprs[4]);
    }

    #[test]
    fn out_of_range_is_disconnected() {
        let f = two_paths();
        assert!(!f.connected(0, 99));
        assert!(!f.connected(99, 99));
        let reprs = f.batch_find_representatives(&[0, 99, 3]);
        assert_eq!(reprs[1], NO_VERTEX);
        assert_eq!(reprs[0], reprs[2]);
        let got = f.batch_connected(&[(0, 3), (0, 99), (99, 99)]);
        assert_eq!(got, vec![true, false, false]);
    }

    #[test]
    fn batch_on_large_random_forest() {
        use rc_parlay::rng::SplitMix64;
        let n = 3000usize;
        let mut rng = SplitMix64::new(5);
        // Random spanning structure on 3 chunks (disconnected thirds).
        let mut edges: Vec<(u32, u32, i64)> = Vec::new();
        for c in 0..3u32 {
            let base = c * 1000;
            for i in 1..1000u32 {
                // connect i to a random earlier vertex of same chunk, chain-biased
                let j = if rng.next_f64() < 0.8 {
                    i - 1
                } else {
                    rng.next_below(i as u64) as u32
                };
                edges.push((base + i, base + j, 1));
            }
        }
        // Degree can exceed 3 with random attach; filter to keep ≤ 3.
        let mut deg = vec![0u8; n];
        edges.retain(|&(u, v, _)| {
            if deg[u as usize] < 3 && deg[v as usize] < 3 {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
                true
            } else {
                false
            }
        });
        let f = F::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let naive = {
            let mut nf = crate::naive::NaiveForest::<i64>::new(n);
            for &(u, v, w) in &edges {
                nf.link(u, v, w).unwrap();
            }
            nf
        };
        let pairs: Vec<(u32, u32)> = (0..500)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let got = f.batch_connected(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(got[i], naive.connected(u, v), "pair ({u},{v})");
        }
    }
}
