//! Compressed path trees (§5.8, Anderson–Blelloch–Tangwongsan).
//!
//! Given `k` marked *terminal* vertices, produce a forest on the terminals
//! plus `O(k)` Steiner vertices such that the path aggregate between every
//! pair of terminals is preserved exactly (Fig. 4: "the max between any
//! pair of nodes is maintained in the compressed tree").
//!
//! Construction is one [`bottom_up`](crate::MarkedSweep::bottom_up)
//! visitor over the marked sweep. Each marked cluster summarizes its
//! terminals' partial Steiner tree by at most two *exposures* — the
//! nearest structure node toward each boundary with the exact path
//! aggregate from that boundary. Junctions materialize eagerly (possibly
//! as provisional degree-2 nodes); a final compaction removes non-terminal
//! leaves and splices non-terminal degree-2 nodes, combining edge
//! aggregates — which keeps every pairwise aggregate exact.
//! `O(k log(1 + n/k))` expected work, `O(k)` output.
//!
//! Out-of-range terminals are ignored — the compressed tree is a set
//! construction, so there is no per-terminal `None` slot to fill; queries
//! against [`CompressedPathTree::path_value`] answer `None` for vertices
//! absent from the tree.

use crate::aggregate::PathAggregate;
use crate::forest::RcForest;
use crate::types::{ClusterId, ClusterKind, Vertex};
use std::collections::{HashMap, HashSet, VecDeque};

/// A tree over `O(k)` vertices preserving pairwise path aggregates
/// between the `terminals` of the original forest.
#[derive(Clone, Debug)]
pub struct CompressedPathTree<P: PathAggregate> {
    /// Original vertex ids present in the compressed tree.
    pub vertices: Vec<Vertex>,
    /// Edges carrying the aggregate of the original path they contract.
    pub edges: Vec<(Vertex, Vertex, P::PathVal)>,
}

/// Exposure of a partial Steiner structure toward a boundary: the nearest
/// structure node and the exact aggregate from the boundary to it.
type Expose<T> = Option<(Vertex, T)>;

#[derive(Clone)]
enum Partial<T> {
    Empty,
    /// Exposures aligned with the cluster's sorted boundary array
    /// (unary clusters use slot 0 only).
    Has([Expose<T>; 2]),
}

impl<P: PathAggregate> RcForest<P> {
    /// Build the compressed path tree of `terminals` (duplicates allowed).
    pub fn compressed_path_tree(&self, terminals: &[Vertex]) -> CompressedPathTree<P> {
        let term_set: HashSet<Vertex> = terminals
            .iter()
            .copied()
            .filter(|&v| (v as usize) < self.n)
            .collect();
        if term_set.is_empty() {
            return CompressedPathTree {
                vertices: Vec::new(),
                edges: Vec::new(),
            };
        }
        let sweep = self.marked_sweep(term_set.iter().copied());
        let mut emitted: Vec<(Vertex, Vertex, P::PathVal)> = Vec::new();

        // Exposure of a *child* cluster of `v`'s contraction toward a
        // given vertex (v or the far boundary).
        let expose_of = |partial: &[Partial<P::PathVal>],
                         child: ClusterId,
                         toward: Vertex|
         -> Expose<P::PathVal> {
            if !child.is_vertex() {
                return None; // base edges hold no terminals
            }
            let w = child.as_vertex();
            let slot = sweep.try_slot(w)?;
            match &partial[slot as usize] {
                Partial::Empty => None,
                Partial::Has(exp) => {
                    let c = self.cluster(w);
                    if c.kind == ClusterKind::Unary {
                        exp[0].clone()
                    } else {
                        let i = if c.boundary[0] == toward { 0 } else { 1 };
                        debug_assert_eq!(c.boundary[i], toward);
                        exp[i].clone()
                    }
                }
            }
        };

        // Bottom-up visitor over the marked sweep; emits junction edges as
        // a side effect and summarizes each cluster by its exposures.
        sweep.bottom_up(Partial::Empty, |s, partial| {
            {
                let v = sweep.rep(s);
                let c = self.cluster(v);
                // Parts attached directly at v: rake children + v itself.
                let mut parts: Vec<(Vertex, P::PathVal)> = Vec::new();
                for rk in c.rake_children.iter() {
                    if let Some(p) = expose_of(partial, rk, v) {
                        parts.push(p);
                    }
                }
                if term_set.contains(&v) {
                    parts.push((v, P::path_identity()));
                }

                let result = match c.kind {
                    ClusterKind::Unary => {
                        let e = c.bin_children[0];
                        let path_e = self.agg_of(e).cluster_path();
                        let e_near = expose_of(partial, e, v);
                        let e_far = expose_of(partial, e, c.boundary[0]);
                        let dirs = parts.len() + usize::from(e_near.is_some());
                        match dirs {
                            0 => Partial::Empty,
                            1 => {
                                if e_near.is_some() {
                                    Partial::Has([e_far, None])
                                } else {
                                    let (t, d) = parts.pop().unwrap();
                                    Partial::Has([Some((t, P::path_combine(&path_e, &d))), None])
                                }
                            }
                            _ => {
                                for (t, d) in parts {
                                    if t != v {
                                        emitted.push((v, t, d));
                                    }
                                }
                                if let Some((te, de)) = e_near {
                                    emitted.push((v, te, de));
                                    Partial::Has([e_far, None])
                                } else {
                                    Partial::Has([Some((v, path_e)), None])
                                }
                            }
                        }
                    }
                    ClusterKind::Binary => {
                        let (l, r) = (c.bin_children[0], c.bin_children[1]);
                        let path_l = self.agg_of(l).cluster_path();
                        let path_r = self.agg_of(r).cluster_path();
                        let l_near = expose_of(partial, l, v);
                        let l_far = expose_of(partial, l, c.boundary[0]);
                        let r_near = expose_of(partial, r, v);
                        let r_far = expose_of(partial, r, c.boundary[1]);
                        let dirs = parts.len()
                            + usize::from(l_near.is_some())
                            + usize::from(r_near.is_some());
                        match dirs {
                            0 => Partial::Empty,
                            1 => {
                                if let Some((tl, dl)) = l_near {
                                    Partial::Has([l_far, Some((tl, P::path_combine(&path_r, &dl)))])
                                } else if let Some((tr, dr)) = r_near {
                                    Partial::Has([Some((tr, P::path_combine(&path_l, &dr))), r_far])
                                } else {
                                    let (t, d) = parts.pop().unwrap();
                                    if t != v {
                                        emitted.push((v, t, d));
                                    }
                                    Partial::Has([
                                        Some((v, path_l.clone())),
                                        Some((v, path_r.clone())),
                                    ])
                                }
                            }
                            _ => {
                                for (t, d) in parts {
                                    if t != v {
                                        emitted.push((v, t, d));
                                    }
                                }
                                let e0 = if let Some((tl, dl)) = l_near {
                                    emitted.push((v, tl, dl));
                                    l_far
                                } else {
                                    Some((v, path_l.clone()))
                                };
                                let e1 = if let Some((tr, dr)) = r_near {
                                    emitted.push((v, tr, dr));
                                    r_far
                                } else {
                                    Some((v, path_r.clone()))
                                };
                                Partial::Has([e0, e1])
                            }
                        }
                    }
                    ClusterKind::Nullary => {
                        if parts.len() >= 2 {
                            for (t, d) in parts {
                                emitted.push((v, t, d));
                            }
                            Partial::Has([Some((v, P::path_identity())), None])
                        } else {
                            // 0 or 1 directions: structure already complete.
                            Partial::Empty
                        }
                    }
                    ClusterKind::Invalid => unreachable!(),
                };
                result
            }
        });

        compact::<P>(emitted, &term_set)
    }
}

/// Remove non-terminal leaves and splice non-terminal degree-2 vertices,
/// combining the aggregates of merged edges.
fn compact<P: PathAggregate>(
    emitted: Vec<(Vertex, Vertex, P::PathVal)>,
    terminals: &HashSet<Vertex>,
) -> CompressedPathTree<P> {
    #[derive(Clone)]
    struct E<T> {
        a: Vertex,
        b: Vertex,
        w: T,
        alive: bool,
    }
    let mut edges: Vec<E<P::PathVal>> = emitted
        .into_iter()
        .map(|(a, b, w)| E {
            a,
            b,
            w,
            alive: true,
        })
        .collect();
    let mut adj: HashMap<Vertex, Vec<usize>> = HashMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.a).or_default().push(i);
        adj.entry(e.b).or_default().push(i);
    }
    for &t in terminals {
        adj.entry(t).or_default();
    }
    let live_deg = |adj: &HashMap<Vertex, Vec<usize>>, edges: &Vec<E<P::PathVal>>, v: Vertex| {
        adj.get(&v)
            .map_or(0, |es| es.iter().filter(|&&i| edges[i].alive).count())
    };
    let mut queue: VecDeque<Vertex> = adj
        .keys()
        .copied()
        .filter(|v| !terminals.contains(v))
        .collect();
    let mut removed: HashSet<Vertex> = HashSet::new();
    while let Some(x) = queue.pop_front() {
        if terminals.contains(&x) || removed.contains(&x) {
            continue;
        }
        let live: Vec<usize> = adj
            .get(&x)
            .map(|es| es.iter().copied().filter(|&i| edges[i].alive).collect())
            .unwrap_or_default();
        match live.len() {
            0 => {
                removed.insert(x);
            }
            1 => {
                let i = live[0];
                edges[i].alive = false;
                removed.insert(x);
                let other = if edges[i].a == x {
                    edges[i].b
                } else {
                    edges[i].a
                };
                queue.push_back(other);
            }
            2 => {
                let (i, j) = (live[0], live[1]);
                let a = if edges[i].a == x {
                    edges[i].b
                } else {
                    edges[i].a
                };
                let b = if edges[j].a == x {
                    edges[j].b
                } else {
                    edges[j].a
                };
                let w = P::path_combine(&edges[i].w, &edges[j].w);
                edges[i].alive = false;
                edges[j].alive = false;
                removed.insert(x);
                let k = edges.len();
                edges.push(E {
                    a,
                    b,
                    w,
                    alive: true,
                });
                adj.entry(a).or_default().push(k);
                adj.entry(b).or_default().push(k);
            }
            _ => {} // genuine Steiner branch point: keep
        }
    }
    let out_edges: Vec<(Vertex, Vertex, P::PathVal)> = edges
        .iter()
        .filter(|e| e.alive)
        .map(|e| (e.a, e.b, e.w.clone()))
        .collect();
    let mut verts: HashSet<Vertex> = terminals.iter().copied().collect();
    for (a, b, _) in &out_edges {
        verts.insert(*a);
        verts.insert(*b);
    }
    let mut vertices: Vec<Vertex> = verts.into_iter().collect();
    vertices.sort_unstable();
    let _ = live_deg;
    CompressedPathTree {
        vertices,
        edges: out_edges,
    }
}

impl<P: PathAggregate> CompressedPathTree<P> {
    /// Path aggregate between two vertices of the compressed tree
    /// (BFS over the `O(k)` structure — test/verification helper).
    pub fn path_value(&self, u: Vertex, v: Vertex) -> Option<P::PathVal> {
        if u == v {
            return Some(P::path_identity());
        }
        let mut adj: HashMap<Vertex, Vec<(Vertex, &P::PathVal)>> = HashMap::new();
        for (a, b, w) in &self.edges {
            adj.entry(*a).or_default().push((*b, w));
            adj.entry(*b).or_default().push((*a, w));
        }
        let mut q = VecDeque::from([u]);
        let mut val: HashMap<Vertex, P::PathVal> = HashMap::new();
        val.insert(u, P::path_identity());
        while let Some(x) = q.pop_front() {
            let xv = val[&x].clone();
            if x == v {
                return Some(xv);
            }
            if let Some(nbrs) = adj.get(&x) {
                for (y, w) in nbrs {
                    if !val.contains_key(y) {
                        val.insert(*y, P::path_combine(&xv, w));
                        q.push_back(*y);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::{MaxEdgeAgg, SumAgg};
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    #[test]
    fn cpt_of_path_endpoints() {
        let edges: Vec<(u32, u32, i64)> = (0..9).map(|i| (i, i + 1, (i + 1) as i64)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(10, &edges, BuildOptions::default()).unwrap();
        let cpt = f.compressed_path_tree(&[0, 9]);
        assert_eq!(
            cpt.edges.len(),
            1,
            "two terminals on a path compress to one edge"
        );
        assert_eq!(cpt.path_value(0, 9), Some(45));
    }

    #[test]
    fn cpt_star_center_branches() {
        // Terminals at three leaves of a star: center becomes Steiner.
        let edges = vec![(0u32, 1u32, 1i64), (0, 2, 2), (0, 3, 4)];
        let f = RcForest::<SumAgg<i64>>::build_edges(4, &edges, BuildOptions::default()).unwrap();
        let cpt = f.compressed_path_tree(&[1, 2, 3]);
        assert_eq!(cpt.edges.len(), 3);
        assert!(cpt.vertices.contains(&0), "center kept as branch point");
        assert_eq!(cpt.path_value(1, 2), Some(3));
        assert_eq!(cpt.path_value(1, 3), Some(5));
        assert_eq!(cpt.path_value(2, 3), Some(6));
    }

    #[test]
    fn cpt_single_terminal() {
        let edges: Vec<(u32, u32, i64)> = (0..4).map(|i| (i, i + 1, 1)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(5, &edges, BuildOptions::default()).unwrap();
        let cpt = f.compressed_path_tree(&[2]);
        assert_eq!(cpt.vertices, vec![2]);
        assert!(cpt.edges.is_empty());
    }

    #[test]
    fn cpt_disconnected_terminals() {
        let f = RcForest::<SumAgg<i64>>::build_edges(
            4,
            &[(0, 1, 3), (2, 3, 4)],
            BuildOptions::default(),
        )
        .unwrap();
        let cpt = f.compressed_path_tree(&[0, 1, 2, 3]);
        assert_eq!(cpt.path_value(0, 1), Some(3));
        assert_eq!(cpt.path_value(2, 3), Some(4));
        assert_eq!(cpt.path_value(0, 3), None);
    }

    #[test]
    fn cpt_preserves_all_pairwise_sums_on_random_trees() {
        let n = 250usize;
        let mut rng = SplitMix64::new(808);
        for trial in 0..5 {
            let mut naive = crate::naive::NaiveForest::<i64>::new(n);
            let mut edges: Vec<(u32, u32, i64)> = Vec::new();
            for v in 1..n as u32 {
                let u = if rng.next_f64() < 0.5 {
                    v - 1
                } else {
                    rng.next_below(v as u64) as u32
                };
                let w = 1 + rng.next_below(40) as i64;
                if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                    edges.push((u, v, w));
                }
            }
            let f =
                RcForest::<SumAgg<i64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
            let terms: Vec<u32> = (0..12).map(|_| rng.next_below(n as u64) as u32).collect();
            let cpt = f.compressed_path_tree(&terms);
            assert!(
                cpt.vertices.len() <= 2 * terms.len(),
                "trial {trial}: compressed tree too large: {} vertices for {} terminals",
                cpt.vertices.len(),
                terms.len()
            );
            for &a in &terms {
                for &b in &terms {
                    let expect = naive.path_edges(a, b).map(|es| es.iter().sum::<i64>());
                    assert_eq!(
                        cpt.path_value(a, b),
                        expect,
                        "trial {trial}: pair ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn cpt_preserves_path_maxima() {
        let n = 150usize;
        let mut rng = SplitMix64::new(99);
        let mut naive = crate::naive::NaiveForest::<u64>::new(n);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 1..n as u32 {
            let u = if rng.next_f64() < 0.5 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = 1 + rng.next_below(1000);
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let f =
            RcForest::<MaxEdgeAgg<u64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let terms: Vec<u32> = (0..10).map(|_| rng.next_below(n as u64) as u32).collect();
        let cpt = f.compressed_path_tree(&terms);
        for &a in &terms {
            for &b in &terms {
                if a == b {
                    continue;
                }
                let expect = naive
                    .path_edges(a, b)
                    .map(|es| es.iter().copied().max().unwrap());
                let got = cpt.path_value(a, b).map(|o| o.map(|e| e.w));
                assert_eq!(
                    got.map(|x| x.unwrap_or(0)),
                    expect.or(Some(0)).filter(|_| got.is_some()).or(expect),
                    "pair ({a},{b})"
                );
                match (cpt.path_value(a, b), naive.path_edges(a, b)) {
                    (Some(Some(e)), Some(es)) => {
                        assert_eq!(e.w, es.iter().copied().max().unwrap(), "max ({a},{b})")
                    }
                    (None, None) => {}
                    (Some(None), Some(es)) => assert!(es.is_empty()),
                    (x, y) => panic!("shape mismatch ({a},{b}): {x:?} vs {y:?}"),
                }
            }
        }
    }
}
