//! The shared marked-subtree batch query engine.
//!
//! Every batch query in the paper (§3, §5.4–5.8) follows one skeleton:
//!
//! 1. collect the *start vertices* of the batch (dropping out-of-range
//!    ids — the per-query answer for those is uniformly `None`, see
//!    [`crate::queries`]);
//! 2. **mark** every RC-tree ancestor of the start vertices' clusters,
//!    atomically claiming each node so shared ancestor paths are walked
//!    once (§5.6); by Theorem A.2 the claimed set has `O(k log(1 + n/k))`
//!    nodes;
//! 3. run a **top-down** (or bottom-up) computation over the marked
//!    subtree, bucketed by contraction round;
//! 4. assemble per-query answers from the per-cluster values.
//!
//! [`MarkedSweep`] owns steps 1–3 behind a visitor interface, so a query
//! family is just a visitor plus an assembly step — and future query kinds
//! (diameter, centroid, heavy-path decompositions) are small visitors
//! instead of new modules of scaffolding. The compact subtree storage
//! (slot map, CSR children and round buckets) lives in a `QueryScratch`
//! checked out of a per-forest pool, so steady-state batch queries reuse
//! the same arenas instead of re-allocating and re-hashing per call.

use crate::aggregate::ClusterAggregate;
use crate::forest::RcForest;
use crate::types::{Vertex, NO_VERTEX};
use rc_parlay::slice::ParSlice;
use rc_parlay::{adaptive_grain, parallel_collect, parallel_for_grain, NONE_U32, SEQ_THRESHOLD};
use std::sync::Mutex;

/// Reusable arenas backing one [`MarkedSweep`]: the compact marked-subtree
/// representation plus staging buffers. Pooled per forest; steady-state
/// batch queries allocate only when a batch outgrows every earlier one.
#[derive(Default)]
pub(crate) struct QueryScratch {
    /// Representative vertices of the marked clusters (compact slots).
    nodes: Vec<Vertex>,
    /// Vertex → compact slot; length `n`, `NONE_U32` when unmarked.
    /// Cleared sparsely (via `nodes`) when the sweep is released.
    slot_of: Vec<u32>,
    /// Compact parent slot (`NONE_U32` for roots).
    parent: Vec<u32>,
    /// Contraction round per slot.
    round: Vec<u32>,
    /// Slots of root clusters.
    roots: Vec<u32>,
    /// CSR children: slot `s`'s children are
    /// `child_dat[child_off[s]..child_off[s + 1]]`.
    child_off: Vec<u32>,
    child_dat: Vec<u32>,
    /// CSR round buckets: round `r`'s slots are
    /// `bucket_dat[bucket_off[r]..bucket_off[r + 1]]`.
    bucket_off: Vec<u32>,
    bucket_dat: Vec<u32>,
    /// Start-vertex staging buffer.
    starts: Vec<Vertex>,
    /// Scatter-cursor staging buffer for the CSR builds.
    cursor: Vec<u32>,
}

/// Per-forest pool of [`QueryScratch`] arenas. Concurrent queries each
/// check one out; the pool retains at most [`ScratchPool::MAX_POOLED`]
/// arenas (each holds an `O(n)` slot map), so a transient burst of
/// concurrent queries cannot pin unbounded memory for the forest's
/// lifetime — arenas past the cap are simply dropped on release.
#[derive(Default)]
pub(crate) struct ScratchPool {
    pool: Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// Upper bound on retained arenas: steady-state query concurrency is
    /// bounded by the machine's parallelism.
    const MAX_POOLED: usize = 16;

    fn take(&self) -> QueryScratch {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, scratch: QueryScratch) {
        // Resolved once: `available_parallelism` re-reads cgroup files per
        // call, which would tax every sweep release on hot query paths.
        static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let cap = *CAP.get_or_init(|| {
            Self::MAX_POOLED
                .min(std::thread::available_parallelism().map_or(Self::MAX_POOLED, |p| p.get()))
        });
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < cap {
            pool.push(scratch);
        }
    }
}

impl<A: ClusterAggregate> RcForest<A> {
    /// Is `v` a valid vertex id of this forest? Batch queries answer
    /// `None` for entries naming out-of-range vertices.
    #[inline]
    pub fn in_range(&self, v: Vertex) -> bool {
        (v as usize) < self.n
    }

    /// Mark the RC-tree ancestors of every in-range vertex yielded by
    /// `starts` (duplicates welcome — they dedup against the atomic
    /// claims) and return the engine handle over the marked subtree.
    ///
    /// `O(k log(1 + n/k))` expected work for `k` starts, `O(log n)` span.
    pub fn marked_sweep<I>(&self, starts: I) -> MarkedSweep<'_, A>
    where
        I: IntoIterator<Item = Vertex>,
    {
        let mut scratch = self.scratch.take();
        scratch.starts.clear();
        scratch
            .starts
            .extend(starts.into_iter().filter(|&v| self.in_range(v)));
        self.mark_ancestors(&mut scratch);
        self.index_marked(&mut scratch);
        MarkedSweep {
            forest: self,
            scratch,
        }
    }

    /// Step 2: claim ancestor paths, collecting claimed representatives
    /// into `scratch.nodes`.
    fn mark_ancestors(&self, scratch: &mut QueryScratch) {
        let epoch = self.marks.new_epochs(1);
        let starts = &scratch.starts;
        scratch.nodes.clear();
        let walk = |start: Vertex, acc: &mut Vec<Vertex>| {
            let mut v = start;
            loop {
                if !self.marks.claim(v, epoch) {
                    break; // another start owns this ancestor path
                }
                acc.push(v);
                let p = self.clusters[v as usize].parent;
                if p.is_none() {
                    break;
                }
                v = p.as_vertex();
            }
        };
        if starts.len() <= SEQ_THRESHOLD {
            // Common case: walk into the pooled buffer, no allocation.
            let (starts, nodes) = (&scratch.starts, &mut scratch.nodes);
            for &s in starts {
                walk(s, nodes);
            }
        } else {
            let mut collected = parallel_collect(starts.len(), |i, acc| walk(starts[i], acc));
            scratch.nodes.append(&mut collected);
        }
    }

    /// Step 3 prep: build the compact slot map, parents, CSR children and
    /// CSR round buckets over the marked nodes.
    fn index_marked(&self, scratch: &mut QueryScratch) {
        // The slot map is allocated once per forest and cleared sparsely.
        if scratch.slot_of.len() < self.n {
            scratch.slot_of.resize(self.n, NONE_U32);
        }
        // Defensive dedup: two sweeps running concurrently on one forest
        // can each re-claim a vertex the other just stamped (the epoch CAS
        // only rejects the *own* epoch), leaving duplicate path fragments
        // in `nodes`. The marked set is still a superset of the true one,
        // so dropping repeats restores a consistent subtree.
        {
            let (nodes, slot_of) = (&mut scratch.nodes, &mut scratch.slot_of);
            nodes.retain(|&v| {
                let seen = slot_of[v as usize] != NONE_U32;
                if !seen {
                    slot_of[v as usize] = 0; // placeholder; final slot below
                }
                !seen
            });
        }
        let len = scratch.nodes.len();
        for (i, &v) in scratch.nodes.iter().enumerate() {
            scratch.slot_of[v as usize] = i as u32;
        }
        scratch.parent.clear();
        scratch.round.clear();
        scratch.roots.clear();
        let mut max_round = 0;
        for &v in scratch.nodes.iter() {
            let c = &self.clusters[v as usize];
            scratch.round.push(c.round);
            max_round = max_round.max(c.round);
            if c.parent.is_none() {
                scratch.parent.push(NONE_U32);
            } else {
                scratch
                    .parent
                    .push(scratch.slot_of[c.parent.as_vertex() as usize]);
            }
        }
        for (i, &p) in scratch.parent.iter().enumerate() {
            if p == NONE_U32 {
                scratch.roots.push(i as u32);
            }
        }
        // CSR children: count, prefix-sum, scatter (cursor = offsets copy).
        scratch.child_off.clear();
        scratch.child_off.resize(len + 1, 0);
        for &p in &scratch.parent {
            if p != NONE_U32 {
                scratch.child_off[p as usize + 1] += 1;
            }
        }
        for i in 0..len {
            scratch.child_off[i + 1] += scratch.child_off[i];
        }
        scratch.child_dat.clear();
        scratch
            .child_dat
            .resize(len.saturating_sub(scratch.roots.len()), 0);
        {
            let QueryScratch {
                cursor,
                child_off,
                child_dat,
                parent,
                ..
            } = scratch;
            cursor.clear();
            cursor.extend_from_slice(&child_off[..len]);
            for (i, &p) in parent.iter().enumerate() {
                if p != NONE_U32 {
                    let at = cursor[p as usize];
                    child_dat[at as usize] = i as u32;
                    cursor[p as usize] += 1;
                }
            }
        }
        // CSR round buckets.
        let nrounds = if len == 0 { 0 } else { max_round as usize + 1 };
        scratch.bucket_off.clear();
        scratch.bucket_off.resize(nrounds + 1, 0);
        for &r in &scratch.round {
            scratch.bucket_off[r as usize + 1] += 1;
        }
        for r in 0..nrounds {
            scratch.bucket_off[r + 1] += scratch.bucket_off[r];
        }
        scratch.bucket_dat.clear();
        scratch.bucket_dat.resize(len, 0);
        {
            let QueryScratch {
                cursor,
                bucket_off,
                bucket_dat,
                round,
                ..
            } = scratch;
            cursor.clear();
            cursor.extend_from_slice(&bucket_off[..nrounds]);
            for (i, &r) in round.iter().enumerate() {
                let at = cursor[r as usize];
                bucket_dat[at as usize] = i as u32;
                cursor[r as usize] += 1;
            }
        }
    }
}

/// A marked subtree of the RC forest, ready to run visitor passes — the
/// engine handle shared by every batch query family.
///
/// Obtained from [`RcForest::marked_sweep`]; holds pooled scratch arenas
/// that return to the forest's pool on drop.
pub struct MarkedSweep<'f, A: ClusterAggregate> {
    forest: &'f RcForest<A>,
    scratch: QueryScratch,
}

impl<'f, A: ClusterAggregate> MarkedSweep<'f, A> {
    /// Number of marked clusters.
    pub fn len(&self) -> usize {
        self.scratch.nodes.len()
    }

    /// True when no in-range start vertices were provided.
    pub fn is_empty(&self) -> bool {
        self.scratch.nodes.is_empty()
    }

    /// Representative vertex of the cluster at `slot`.
    #[inline]
    pub fn rep(&self, slot: u32) -> Vertex {
        self.scratch.nodes[slot as usize]
    }

    /// Compact slot of `v`'s cluster, `None` when `v` is out of range or
    /// its cluster is unmarked.
    #[inline]
    pub fn try_slot(&self, v: Vertex) -> Option<u32> {
        let s = *self.scratch.slot_of.get(v as usize)?;
        (s != NONE_U32).then_some(s)
    }

    /// Compact slot of `v`'s cluster. Panics when unmarked — every vertex
    /// passed as a start, and every boundary vertex of a marked cluster,
    /// is marked; use [`MarkedSweep::try_slot`] for vertices that may not
    /// be.
    #[inline]
    pub fn slot(&self, v: Vertex) -> u32 {
        let s = self.scratch.slot_of[v as usize];
        assert_ne!(s, NONE_U32, "vertex {v} is not marked");
        s
    }

    /// Parent slot (`None` for component roots).
    #[inline]
    pub fn parent(&self, slot: u32) -> Option<u32> {
        let p = self.scratch.parent[slot as usize];
        (p != NONE_U32).then_some(p)
    }

    /// Contraction round of the cluster at `slot`.
    #[inline]
    pub fn round(&self, slot: u32) -> u32 {
        self.scratch.round[slot as usize]
    }

    /// Child slots of `slot`.
    pub fn children(&self, slot: u32) -> &[u32] {
        let lo = self.scratch.child_off[slot as usize] as usize;
        let hi = self.scratch.child_off[slot as usize + 1] as usize;
        &self.scratch.child_dat[lo..hi]
    }

    /// Slots of root clusters.
    pub fn roots(&self) -> &[u32] {
        &self.scratch.roots
    }

    /// Slots of round `r` (ascending rounds = bottom-up order).
    fn bucket(&self, r: usize) -> &[u32] {
        let lo = self.scratch.bucket_off[r] as usize;
        let hi = self.scratch.bucket_off[r + 1] as usize;
        &self.scratch.bucket_dat[lo..hi]
    }

    fn num_rounds(&self) -> usize {
        self.scratch.bucket_off.len().saturating_sub(1)
    }

    /// Top-down visitor pass: every slot's value is computed from the
    /// values of strictly-later-round slots (its parent and boundary
    /// clusters), processed root rounds first. Rounds with many clusters
    /// run in parallel. Returns the per-slot values.
    ///
    /// The visitor receives the slot and a [`SweepVals`] view of the
    /// values computed so far; reading a slot whose round is not strictly
    /// later than the current one panics (that value would be a data
    /// race).
    pub fn top_down<T, F>(&self, init: T, visit: F) -> Vec<T>
    where
        T: Clone + Send + Sync,
        F: Fn(u32, &SweepVals<'_, '_, T>) -> T + Sync,
    {
        let mut vals = vec![init; self.len()];
        {
            let pv = ParSlice::new(&mut vals);
            for r in (0..self.num_rounds()).rev() {
                let bucket = self.bucket(r);
                let view = SweepVals {
                    vals: &pv,
                    round: &self.scratch.round,
                    min_round: r as u32,
                };
                // Small batches take a sequential fast path through the
                // adaptive grain: for bucket sizes at or below
                // `SEQ_THRESHOLD` (always the case when the whole marked
                // set is — the tiny-k `rc_batched` rounds of the fig11b
                // sweep), the grain equals the bucket length and
                // `parallel_for_grain` runs the loop inline with no pool
                // dispatch.
                parallel_for_grain(bucket.len(), adaptive_grain(bucket.len()), |i| {
                    let s = bucket[i];
                    let v = visit(s, &view);
                    // SAFETY: slot `s` belongs to round `r` and is written
                    // by exactly one iteration; the view only reads rounds
                    // > `r`.
                    unsafe { pv.write(s as usize, v) };
                });
            }
        }
        vals
    }

    /// Bottom-up visitor pass: every slot's value is computed from
    /// strictly-earlier-round slots (its children), leaf rounds first.
    /// Sequential — bottom-up consumers (compressed path trees) thread
    /// mutable state through the visitor.
    pub fn bottom_up<T, F>(&self, init: T, mut visit: F) -> Vec<T>
    where
        T: Clone,
        F: FnMut(u32, &[T]) -> T,
    {
        let mut vals = vec![init; self.len()];
        for r in 0..self.num_rounds() {
            let lo = self.scratch.bucket_off[r] as usize;
            let hi = self.scratch.bucket_off[r + 1] as usize;
            for i in lo..hi {
                let s = self.scratch.bucket_dat[i];
                let v = visit(s, &vals);
                vals[s as usize] = v;
            }
        }
        vals
    }

    /// Top-down `root_boundary` orientation: for each marked cluster, the
    /// boundary vertex on the path to its component root (`NO_VERTEX` for
    /// root clusters). This is the orientation oracle shared by batch LCA,
    /// batch path sums and the Fig. 8 query family (supplementary A.6).
    pub fn root_boundary(&self) -> Vec<Vertex> {
        self.top_down(NO_VERTEX, |s, vals| match self.parent(s) {
            None => NO_VERTEX,
            Some(ps) => {
                let q = *vals.get(ps);
                let c = self.forest.cluster(self.rep(s));
                if q != NO_VERTEX && (c.boundary[0] == q || c.boundary[1] == q) {
                    q
                } else {
                    self.rep(ps)
                }
            }
        })
    }

    /// Top-down component-root labels: for each marked cluster, the
    /// representative vertex of its component's root cluster.
    pub fn root_labels(&self) -> Vec<Vertex> {
        self.top_down(NO_VERTEX, |s, vals| match self.parent(s) {
            None => self.rep(s),
            Some(ps) => *vals.get(ps),
        })
    }
}

impl<A: ClusterAggregate> Drop for MarkedSweep<'_, A> {
    fn drop(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        // Sparse clear: only the marked entries of the slot map.
        for &v in &scratch.nodes {
            scratch.slot_of[v as usize] = NONE_U32;
        }
        scratch.nodes.clear();
        self.forest.scratch.put(scratch);
    }
}

/// Read view over the values of a running [`MarkedSweep::top_down`] pass.
pub struct SweepVals<'a, 'v, T> {
    vals: &'a ParSlice<'v, T>,
    round: &'a [u32],
    min_round: u32,
}

impl<T: Send + Sync> SweepVals<'_, '_, T> {
    /// Value of `slot`, which must belong to a strictly later contraction
    /// round than the slots currently being visited (parents and boundary
    /// clusters always do). Panics otherwise — such a read would race.
    #[inline]
    pub fn get(&self, slot: u32) -> &T {
        assert!(
            self.round[slot as usize] > self.min_round,
            "top_down visitor may only read strictly-later-round slots"
        );
        // SAFETY: later-round slots were finalized in earlier iterations
        // of the pass and are no longer written.
        unsafe { &*self.vals.get_mut(slot as usize) }
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::SumAgg;
    use crate::forest::{BuildOptions, RcForest};
    use crate::types::NO_VERTEX;

    fn path_forest(n: u32) -> RcForest<SumAgg<i64>> {
        let edges: Vec<(u32, u32, i64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        RcForest::build_edges(n as usize, &edges, BuildOptions::default()).unwrap()
    }

    #[test]
    fn sweep_structure_is_consistent() {
        let f = path_forest(64);
        let sweep = f.marked_sweep([0u32, 13, 40, 63]);
        assert!(!sweep.is_empty());
        for s in 0..sweep.len() as u32 {
            if let Some(p) = sweep.parent(s) {
                assert!(sweep.round(p) > sweep.round(s), "parents contract later");
                assert!(sweep.children(p).contains(&s));
            } else {
                assert!(sweep.roots().contains(&s));
            }
            assert_eq!(sweep.slot(sweep.rep(s)), s);
        }
    }

    #[test]
    fn sweep_filters_out_of_range_starts() {
        let f = path_forest(8);
        let sweep = f.marked_sweep([2u32, 900, u32::MAX]);
        assert!(!sweep.is_empty());
        assert_eq!(sweep.try_slot(900), None);
        assert!(sweep.try_slot(2).is_some());
    }

    #[test]
    fn empty_sweep() {
        let f = path_forest(4);
        let sweep = f.marked_sweep(std::iter::empty());
        assert!(sweep.is_empty());
        assert!(sweep.roots().is_empty());
        assert!(sweep.top_down(0u32, |_, _| unreachable!()).is_empty());
    }

    #[test]
    fn root_labels_constant_per_component() {
        // Two components: 0-1-2 and 3-4.
        let edges = vec![(0u32, 1u32, 1i64), (1, 2, 1), (3, 4, 1)];
        let f = RcForest::<SumAgg<i64>>::build_edges(5, &edges, BuildOptions::default()).unwrap();
        let sweep = f.marked_sweep([0u32, 2, 3, 4]);
        let labels = sweep.root_labels();
        let l0 = labels[sweep.slot(0) as usize];
        assert_eq!(labels[sweep.slot(2) as usize], l0);
        let l3 = labels[sweep.slot(3) as usize];
        assert_eq!(labels[sweep.slot(4) as usize], l3);
        assert_ne!(l0, l3);
        assert_ne!(l0, NO_VERTEX);
    }

    #[test]
    fn scratch_is_pooled_and_cleared() {
        let f = path_forest(32);
        for round in 0..10 {
            let sweep = f.marked_sweep([round as u32, 31 - round as u32]);
            // Stale slots from earlier rounds must not leak through.
            for v in 0..32u32 {
                if let Some(s) = sweep.try_slot(v) {
                    assert_eq!(sweep.rep(s), v, "round {round}: stale slot for {v}");
                }
            }
        }
    }

    #[test]
    fn index_marked_dedups_double_claimed_paths() {
        // Simulate the concurrent-sweep race: when two sweeps interleave,
        // a walk can re-claim vertices another sweep just stamped, leaving
        // duplicate path fragments in `nodes`. The indexer must drop them.
        let f = path_forest(16);
        let mut scratch = super::QueryScratch::default();
        scratch.starts.extend([0u32, 5, 11]);
        f.mark_ancestors(&mut scratch);
        let clean_len = scratch.nodes.len();
        let dup = scratch.nodes.clone();
        scratch.nodes.extend(dup);
        f.index_marked(&mut scratch);
        let sweep = super::MarkedSweep {
            forest: &f,
            scratch,
        };
        assert_eq!(sweep.len(), clean_len, "duplicates dropped");
        let mut seen = std::collections::HashSet::new();
        for s in 0..sweep.len() as u32 {
            assert!(seen.insert(sweep.rep(s)), "rep {} duplicated", sweep.rep(s));
            assert_eq!(sweep.slot(sweep.rep(s)), s);
            if let Some(p) = sweep.parent(s) {
                assert_eq!(
                    sweep.children(p).iter().filter(|&&c| c == s).count(),
                    1,
                    "child listed once"
                );
            }
        }
    }

    #[test]
    fn concurrent_sweeps_stay_consistent() {
        // Probabilistic exercise of the double-claim race: many threads run
        // overlapping multi-start batch queries against one forest.
        let f = std::sync::Arc::new(path_forest(128));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let f = std::sync::Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..300u32 {
                        let a = (t * 17 + i) % 128;
                        let b = (i * 31 + 5) % 128;
                        let got = f.batch_path_aggregate(&[(a, b), (b, a)]);
                        let want = Some((a as i64 - b as i64).abs());
                        assert_eq!(got, vec![want, want], "thread {t} iter {i} ({a},{b})");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn top_down_depth_matches_parent_walk() {
        let f = path_forest(100);
        let sweep = f.marked_sweep(0..100u32);
        let depth = sweep.top_down(0u32, |s, vals| match sweep.parent(s) {
            None => 0,
            Some(p) => *vals.get(p) + 1,
        });
        for s in 0..sweep.len() as u32 {
            let mut d = 0;
            let mut cur = s;
            while let Some(p) = sweep.parent(cur) {
                d += 1;
                cur = p;
            }
            assert_eq!(depth[s as usize], d, "slot {s}");
        }
    }

    #[test]
    fn bottom_up_counts_subtree_sizes() {
        let f = path_forest(50);
        let sweep = f.marked_sweep(0..50u32);
        let sizes = sweep.bottom_up(0u32, |s, vals| {
            1 + sweep
                .children(s)
                .iter()
                .map(|&c| vals[c as usize])
                .sum::<u32>()
        });
        let total: u32 = sweep.roots().iter().map(|&r| sizes[r as usize]).sum();
        assert_eq!(total as usize, sweep.len());
    }
}
