//! Batched subtree queries (§3.4, §5.6, supplementary A.5).
//!
//! Naively running `k` subtree queries repeats work on shared ancestor
//! paths. The batch algorithm runs one [`RcForest::marked_sweep`] over all
//! query endpoints, then a [`top_down`](crate::MarkedSweep::top_down)
//! visitor computing the contribution of the *subtree growing out of* each
//! boundary vertex of each marked cluster. Each query is then assembled in
//! `O(1)` lookups (plus the `O(log n)` direction-giver resolution the
//! paper's implementation also performs). Total: `O(k log(1 + n/k))` work,
//! `O(log n)` span.

use crate::aggregate::SubtreeAggregate;
use crate::forest::RcForest;
use crate::types::{ClusterId, Vertex, NO_VERTEX};
use rayon::prelude::*;

impl<S: SubtreeAggregate> RcForest<S> {
    /// Answer a batch of subtree queries `(u_i, p_i)` — the aggregate of
    /// the subtree rooted at `u_i` with neighbor `p_i` as its parent.
    /// Entries with an out-of-range vertex or a non-adjacent `(u, p)`
    /// yield `None`.
    pub fn batch_subtree_aggregate(
        &self,
        queries: &[(Vertex, Vertex)],
    ) -> Vec<Option<S::SubtreeVal>> {
        if queries.is_empty() {
            return Vec::new();
        }
        // Mark ancestors of both endpoints (the p-side walk also feeds the
        // direction-giver climb).
        let sweep = self.marked_sweep(queries.iter().flat_map(|&(u, p)| [u, p]));

        // Top-down: OUT values per marked cluster per boundary slot.
        // out[slot][i] = aggregate of the subtree growing out of
        // boundary[i] of that cluster (including the boundary vertex).
        let out = sweep.top_down([None, None] as [Option<S::SubtreeVal>; 2], |s, vals| {
            let ps = match sweep.parent(s) {
                None => return [None, None], // root cluster: no boundaries
                Some(ps) => ps,
            };
            let c = self.cluster(sweep.rep(s));
            let p_rep = sweep.rep(ps);
            let pc = self.cluster(p_rep);
            let parent_out = vals.get(ps);
            let mut vals_here: [Option<S::SubtreeVal>; 2] = [None, None];
            for (i, val_here) in vals_here.iter_mut().enumerate() {
                let b = c.boundary[i];
                if b == NO_VERTEX {
                    continue;
                }
                if b == p_rep {
                    // Everything beyond p from this cluster's side.
                    let mut acc = S::vertex_value(p_rep, self.vertex_weight(p_rep));
                    let child_id = ClusterId::vertex(sweep.rep(s));
                    for k in pc.children() {
                        if k != child_id {
                            acc = S::subtree_combine(&acc, &self.agg_of(k).cluster_total());
                        }
                    }
                    for (j, &pb) in pc.boundary.iter().enumerate() {
                        if pb == NO_VERTEX {
                            continue;
                        }
                        // P's boundaries shared with C are on C's side.
                        if pb != c.boundary[0] && pb != c.boundary[1] {
                            acc = S::subtree_combine(
                                &acc,
                                parent_out[j].as_ref().expect("parent OUT ready"),
                            );
                        }
                    }
                    *val_here = Some(acc);
                } else {
                    // Shared with the parent: same OUT value.
                    let j = pc
                        .boundary
                        .iter()
                        .position(|&pb| pb == b)
                        .expect("boundary shared with parent");
                    *val_here = Some(parent_out[j].clone().expect("parent OUT ready"));
                }
            }
            vals_here
        });

        // Assemble answers in parallel.
        queries
            .par_iter()
            .map(|&(u, p)| {
                if !self.in_range(u) || !self.in_range(p) || !self.has_edge(u, p) {
                    return None;
                }
                let (toward, excluded_boundary) = self.child_toward(u, p);
                let uc = self.cluster(u);
                let slot = sweep.slot(u) as usize;
                let mut acc = S::vertex_value(u, self.vertex_weight(u));
                for k in uc.children() {
                    if k != toward {
                        acc = S::subtree_combine(&acc, &self.agg_of(k).cluster_total());
                    }
                }
                for (i, &b) in uc.boundary.iter().enumerate() {
                    if b == NO_VERTEX || Some(b) == excluded_boundary {
                        continue;
                    }
                    acc = S::subtree_combine(&acc, out[slot][i].as_ref().expect("OUT ready"));
                }
                Some(acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::SumAgg;
    use crate::forest::{BuildOptions, RcForest};
    use rc_parlay::rng::SplitMix64;

    #[test]
    fn batch_matches_single_on_path() {
        let edges: Vec<(u32, u32, i64)> = (0..19).map(|i| (i, i + 1, (i % 5) as i64)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(20, &edges, BuildOptions::default()).unwrap();
        let queries: Vec<(u32, u32)> = (0..19)
            .map(|i| (i, i + 1))
            .chain((0..19).map(|i| (i + 1, i)))
            .collect();
        let batch = f.batch_subtree_aggregate(&queries);
        for (i, &(u, p)) in queries.iter().enumerate() {
            assert_eq!(batch[i], f.subtree_aggregate(u, p), "query ({u},{p})");
        }
    }

    #[test]
    fn batch_matches_single_on_random_forest() {
        let n = 500usize;
        let mut rng = SplitMix64::new(123);
        let mut naive = crate::naive::NaiveForest::<i64>::new(n);
        let mut edges: Vec<(u32, u32, i64)> = Vec::new();
        for v in 1..n as u32 {
            let u = if rng.next_f64() < 0.5 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = rng.next_below(20) as i64;
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let f = RcForest::<SumAgg<i64>>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let mut queries: Vec<(u32, u32)> = Vec::new();
        for _ in 0..200 {
            let u = rng.next_below(n as u64) as u32;
            let nbrs: Vec<u32> = naive.neighbors(u).collect();
            if nbrs.is_empty() {
                continue;
            }
            queries.push((u, nbrs[rng.next_below(nbrs.len() as u64) as usize]));
        }
        let batch = f.batch_subtree_aggregate(&queries);
        for (i, &(u, p)) in queries.iter().enumerate() {
            assert_eq!(batch[i], f.subtree_aggregate(u, p), "query ({u},{p})");
        }
    }

    #[test]
    fn batch_handles_invalid_pairs() {
        let f =
            RcForest::<SumAgg<i64>>::build_edges(4, &[(0, 1, 1)], BuildOptions::default()).unwrap();
        let res = f.batch_subtree_aggregate(&[(0, 1), (0, 2), (2, 3), (0, 77), (77, 0)]);
        assert!(res[0].is_some());
        assert_eq!(res[1], None);
        assert_eq!(res[2], None);
        assert_eq!(res[3], None, "out-of-range direction giver");
        assert_eq!(res[4], None, "out-of-range root");
    }

    #[test]
    fn batch_empty() {
        let f = RcForest::<SumAgg<i64>>::new(3);
        assert!(f.batch_subtree_aggregate(&[]).is_empty());
    }
}
