//! Augmented values on RC clusters.
//!
//! RC trees answer weight queries by storing *augmented values* on clusters,
//! maintained bottom-up at build time and during updates (§3.2: "bottom-up
//! computations are stored as augmented values"). The [`ClusterAggregate`]
//! trait describes how a cluster's value derives from its children for each
//! contraction kind; capability traits ([`PathAggregate`],
//! [`SubtreeAggregate`], …) expose the pieces each query family needs.
//!
//! ## Orientation convention
//!
//! Directional data inside an aggregate (e.g. "distance from boundary X")
//! is stored relative to the cluster's boundary array, which is always
//! sorted by vertex id. The combination callbacks receive the actual
//! boundary vertex ids, so implementations can orient themselves (see
//! `NearestMarkedAgg` for a worked example).

use crate::types::Vertex;

/// How augmented values combine when clusters merge.
///
/// Cluster *contents* are: all edges inside the cluster, plus every vertex
/// strictly inside it (the representative is inside; boundary vertices are
/// *not*). A base edge cluster contains just its edge.
pub trait ClusterAggregate: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Weight attached to each vertex (use `()` when unused).
    type VertexWeight: Clone + Default + Send + Sync + std::fmt::Debug + 'static;
    /// Weight attached to each edge.
    type EdgeWeight: Clone + Send + Sync + std::fmt::Debug + 'static;

    /// Value of the base cluster for edge `{u, v}` with weight `w`.
    fn base_edge(u: Vertex, v: Vertex, w: &Self::EdgeWeight) -> Self;

    /// `v` compressed. `left` is the binary child whose cluster path runs
    /// `a..v`; `right` runs `v..b`; `rakes` are the unary children hanging
    /// at `v`. The result is a binary cluster with boundaries `{a, b}`
    /// (callers pass `a < b`) and cluster path `a..b`.
    fn compress(
        v: Vertex,
        vw: &Self::VertexWeight,
        a: Vertex,
        left: &Self,
        b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self;

    /// `v` raked onto `u`. `edge` is the binary child with cluster path
    /// `v..u`; `rakes` hang at `v`. The result is a unary cluster with
    /// boundary `{u}`.
    fn rake(v: Vertex, vw: &Self::VertexWeight, u: Vertex, edge: &Self, rakes: &[&Self]) -> Self;

    /// `v` finalized (became the root of its component); `rakes` hang at
    /// `v`. The result is the nullary root cluster.
    fn finalize(v: Vertex, vw: &Self::VertexWeight, rakes: &[&Self]) -> Self;
}

/// Aggregates exposing a (commutative) monoid over *cluster paths* —
/// enables single path queries and the compressed-path-tree machinery.
pub trait PathAggregate: ClusterAggregate {
    /// Value of a path (composition of edge values along it).
    type PathVal: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static;

    /// Identity of the path monoid (value of an empty path).
    fn path_identity() -> Self::PathVal;

    /// Combine two adjacent path values.
    fn path_combine(a: &Self::PathVal, b: &Self::PathVal) -> Self::PathVal;

    /// The value of this (binary) cluster's cluster path. Unary/nullary
    /// clusters have no cluster path; implementations return the identity.
    fn cluster_path(&self) -> Self::PathVal;

    /// Path value of a single edge weight.
    fn edge_path_value(w: &Self::EdgeWeight) -> Self::PathVal;
}

/// Path aggregates whose path monoid is a *group* (has inverses) — enables
/// batch path queries via the root-path trick of §3.6.
pub trait GroupPathAggregate: PathAggregate {
    /// Inverse element of the path group.
    fn path_inverse(a: &Self::PathVal) -> Self::PathVal;
}

/// Aggregates exposing a commutative semigroup total over cluster
/// *contents* — enables subtree queries (§3.4).
pub trait SubtreeAggregate: ClusterAggregate {
    /// Value of a region of the tree (vertices + edges).
    type SubtreeVal: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static;

    /// Identity (value of an empty region). The paper's semigroup has no
    /// identity; adjoining one is free and simplifies the code.
    fn subtree_identity() -> Self::SubtreeVal;

    /// Combine two disjoint regions.
    fn subtree_combine(a: &Self::SubtreeVal, b: &Self::SubtreeVal) -> Self::SubtreeVal;

    /// Total value of this cluster's contents.
    fn cluster_total(&self) -> Self::SubtreeVal;

    /// Contribution of a lone vertex with weight `vw`.
    fn vertex_value(v: Vertex, vw: &Self::VertexWeight) -> Self::SubtreeVal;
}

/// Convenience: combine the values of an iterator of regions.
pub fn subtree_sum<A: SubtreeAggregate>(
    items: impl IntoIterator<Item = A::SubtreeVal>,
) -> A::SubtreeVal {
    items
        .into_iter()
        .fold(A::subtree_identity(), |acc, x| A::subtree_combine(&acc, &x))
}

/// Numeric weights closed under addition — the commutative groups used by
/// the built-in sum aggregates.
pub trait AddWeight: Copy + PartialEq + Default + Send + Sync + std::fmt::Debug + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Addition.
    fn add(a: Self, b: Self) -> Self;
    /// Additive inverse.
    fn neg(a: Self) -> Self;
}

macro_rules! impl_add_weight_int {
    ($($t:ty),*) => {$(
        impl AddWeight for $t {
            #[inline] fn zero() -> Self { 0 }
            #[inline] fn add(a: Self, b: Self) -> Self { a.wrapping_add(b) }
            #[inline] fn neg(a: Self) -> Self { a.wrapping_neg() }
        }
    )*};
}
impl_add_weight_int!(i32, i64, i128, u32, u64);

impl AddWeight for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
    #[inline]
    fn neg(a: Self) -> Self {
        -a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_weight_laws_i64() {
        let a = 17i64;
        let b = -4i64;
        assert_eq!(i64::add(a, i64::zero()), a);
        assert_eq!(i64::add(a, i64::neg(a)), 0);
        assert_eq!(i64::add(a, b), i64::add(b, a));
    }

    #[test]
    fn add_weight_wrapping_is_group() {
        // Wrapping arithmetic keeps the group laws even at the boundaries.
        let a = i64::MAX;
        assert_eq!(i64::add(i64::add(a, 1), i64::neg(1)), a);
    }

    #[test]
    fn add_weight_f64() {
        assert_eq!(f64::add(1.5, 2.5), 4.0);
        assert_eq!(f64::neg(3.0), -3.0);
    }
}
