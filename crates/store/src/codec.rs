//! Binary encoding of WAL epoch records and snapshot payloads.
//!
//! Fixed-width little-endian fields throughout — no varints, so every
//! record has a position computable from counts alone. That is what lets
//! the snapshot encoder fill the edge and weight sections **in parallel**
//! (disjoint `memcpy`s into one preallocated buffer via
//! `rc_parlay::parallel_for`) and keeps decode single-pass with explicit
//! bounds checks (a truncated or bit-flipped payload decodes to
//! `Err(DecodeError)`, never a panic — the crash-injection harness feeds
//! this decoder arbitrary prefixes).

use rc_core::{ForestState, Vertex};

/// One committed flush of the serve tier's update phase: the exact batch
/// groups the coalescer handed the forest, in commit order. Replaying the
/// groups in this order (cuts, links, edge weights, vertex weights)
/// reproduces the flush's state transition through the same batch entry
/// points.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushRecord {
    /// Edges deleted by this flush.
    pub cuts: Vec<(Vertex, Vertex)>,
    /// Edges inserted by this flush (admission proved them acyclic even
    /// before the cuts, so cut-then-link replay is exact).
    pub links: Vec<(Vertex, Vertex, u64)>,
    /// Edge reweights (distinct edges — order within the group is free).
    pub eweights: Vec<(Vertex, Vertex, u64)>,
    /// Vertex weight + mark writes (distinct vertices).
    pub vweights: Vec<(Vertex, u64, bool)>,
}

impl FlushRecord {
    /// Does this flush commit anything?
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
            && self.links.is_empty()
            && self.eweights.is_empty()
            && self.vweights.is_empty()
    }

    /// Total ops across the four groups.
    pub fn len(&self) -> usize {
        self.cuts.len() + self.links.len() + self.eweights.len() + self.vweights.len()
    }
}

/// One WAL frame: an epoch's committed updates as its flush sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochRecord {
    /// The (monotone) epoch number.
    pub epoch: u64,
    /// Flushes in commit order; most epochs have exactly one.
    pub flushes: Vec<FlushRecord>,
}

impl EpochRecord {
    /// Total ops across all flushes.
    pub fn ops(&self) -> usize {
        self.flushes.iter().map(FlushRecord::len).sum()
    }
}

/// A structurally invalid payload (truncated, oversized count, trailing
/// garbage). Contains a human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// primitive readers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        let s = self
            .buf
            .get(self.at..self.at + n)
            .ok_or_else(|| DecodeError(format!("truncated reading {what} at {}", self.at)))?;
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A count word, bounded by what could possibly fit in the remaining
    /// bytes at `elem_bytes` per element — the bound is what makes the
    /// downstream `Vec::with_capacity(count)` safe: a corrupt (but
    /// checksum-colliding) count word must produce `Err`, not a
    /// multi-GiB reservation and an abort.
    fn count(&mut self, what: &str, elem_bytes: usize) -> Result<usize, DecodeError> {
        let c = self.u32(what)? as usize;
        if c > (self.buf.len() - self.at) / elem_bytes.max(1) {
            return Err(DecodeError(format!("count {c} for {what} exceeds payload")));
        }
        Ok(c)
    }

    fn done(&self, what: &str) -> Result<(), DecodeError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.at
            )))
        }
    }
}

// ---------------------------------------------------------------------
// epoch records
// ---------------------------------------------------------------------

/// Encode an epoch record as a WAL frame payload.
pub fn encode_epoch(rec: &EpochRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + rec.ops() * 17);
    out.extend_from_slice(&rec.epoch.to_le_bytes());
    out.extend_from_slice(&(rec.flushes.len() as u32).to_le_bytes());
    for f in &rec.flushes {
        out.extend_from_slice(&(f.cuts.len() as u32).to_le_bytes());
        for &(u, v) in &f.cuts {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(f.links.len() as u32).to_le_bytes());
        for &(u, v, w) in &f.links {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(f.eweights.len() as u32).to_le_bytes());
        for &(u, v, w) in &f.eweights {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(f.vweights.len() as u32).to_le_bytes());
        for &(v, w, marked) in &f.vweights {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
            out.push(marked as u8);
        }
    }
    out
}

/// Decode an epoch record from a WAL frame payload.
pub fn decode_epoch(payload: &[u8]) -> Result<EpochRecord, DecodeError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64("epoch")?;
    // A flush record is at least its four count words.
    let nflushes = r.count("flush count", 16)?;
    let mut flushes = Vec::with_capacity(nflushes);
    for _ in 0..nflushes {
        let mut f = FlushRecord::default();
        for _ in 0..r.count("cuts", 8)? {
            f.cuts.push((r.u32("cut u")?, r.u32("cut v")?));
        }
        for _ in 0..r.count("links", 16)? {
            f.links
                .push((r.u32("link u")?, r.u32("link v")?, r.u64("link w")?));
        }
        for _ in 0..r.count("eweights", 16)? {
            f.eweights
                .push((r.u32("ew u")?, r.u32("ew v")?, r.u64("ew w")?));
        }
        for _ in 0..r.count("vweights", 13)? {
            let v = r.u32("vw v")?;
            let w = r.u64("vw w")?;
            let m = r.take(1, "vw mark")?[0];
            if m > 1 {
                return Err(DecodeError(format!("mark byte {m} not a bool")));
            }
            f.vweights.push((v, w, m == 1));
        }
        flushes.push(f);
    }
    r.done("epoch record")?;
    Ok(EpochRecord { epoch, flushes })
}

// ---------------------------------------------------------------------
// snapshot payloads
// ---------------------------------------------------------------------

const EDGE_BYTES: usize = 16; // u32 + u32 + u64
const WEIGHT_BYTES: usize = 8;

/// Encode `(epoch, state)` as a snapshot payload. The edge and weight
/// sections are fixed-stride, so they are written by disjoint parallel
/// chunks — extraction and restore both ride the parallel paths.
pub fn encode_snapshot(epoch: u64, state: &ForestState) -> Vec<u8> {
    // The weight section is sized by `n` but filled by `weights.len()`
    // unchecked raw-pointer writes — the type invariant must hold
    // *before* the parallel fill, not as a debug-only afterthought.
    assert_eq!(
        state.weights.len(),
        state.n,
        "ForestState invariant: weights.len() == n"
    );
    let edges_at = 8 + 8 + 4;
    let weights_at = edges_at + state.edges.len() * EDGE_BYTES;
    let marks_at = weights_at + state.weights.len() * WEIGHT_BYTES + 4;
    let total = marks_at + state.marks.len() * 4;
    let mut out = vec![0u8; total];
    out[0..8].copy_from_slice(&epoch.to_le_bytes());
    out[8..16].copy_from_slice(&(state.n as u64).to_le_bytes());
    out[16..20].copy_from_slice(&(state.edges.len() as u32).to_le_bytes());
    {
        // Parallel fill of the two big sections: each index owns one
        // fixed-width slot, so the writes are disjoint.
        let edge_section = as_send_ptr(&mut out[edges_at..weights_at]);
        let edges = &state.edges;
        rc_parlay::parallel_for(edges.len(), |i| {
            let (u, v, w) = edges[i];
            let mut rec = [0u8; EDGE_BYTES];
            rec[0..4].copy_from_slice(&u.to_le_bytes());
            rec[4..8].copy_from_slice(&v.to_le_bytes());
            rec[8..16].copy_from_slice(&w.to_le_bytes());
            // SAFETY: slot `i` is a private 16-byte range of the section.
            unsafe { edge_section.write_at(i * EDGE_BYTES, &rec) }
        });
    }
    {
        let weight_section = as_send_ptr(&mut out[weights_at..weights_at + state.n * WEIGHT_BYTES]);
        let weights = &state.weights;
        rc_parlay::parallel_for(weights.len(), |i| {
            let b = weights[i].to_le_bytes();
            // SAFETY: slot `i` is a private 8-byte range of the section.
            unsafe { weight_section.write_at(i * WEIGHT_BYTES, &b) }
        });
    }
    let mut at = weights_at + state.n * WEIGHT_BYTES;
    out[at..at + 4].copy_from_slice(&(state.marks.len() as u32).to_le_bytes());
    at += 4;
    for &m in &state.marks {
        out[at..at + 4].copy_from_slice(&m.to_le_bytes());
        at += 4;
    }
    debug_assert_eq!(at, total);
    out
}

/// A raw pointer wrapper that is `Sync` so parallel chunks can write
/// disjoint ranges of one buffer.
struct SendPtr(*mut u8);
unsafe impl Sync for SendPtr {}
unsafe impl Send for SendPtr {}

impl SendPtr {
    /// Copy `src` to `offset` bytes past the base pointer.
    ///
    /// # Safety
    /// `offset..offset + src.len()` must be in bounds of the wrapped
    /// buffer and not concurrently written by any other caller.
    unsafe fn write_at(&self, offset: usize, src: &[u8]) {
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
    }
}

fn as_send_ptr(s: &mut [u8]) -> SendPtr {
    SendPtr(s.as_mut_ptr())
}

/// Decode a snapshot payload back to `(epoch, state)`. The state is
/// additionally [`ForestState::validate`]d, so a decoded snapshot is
/// always canonical.
pub fn decode_snapshot(payload: &[u8]) -> Result<(u64, ForestState), DecodeError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64("snapshot epoch")?;
    let n64 = r.u64("n")?;
    if n64 > u32::MAX as u64 {
        return Err(DecodeError(format!("n {n64} exceeds the vertex id space")));
    }
    let n = n64 as usize;
    let nedges = r.count("edge count", EDGE_BYTES)?;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        edges.push((r.u32("edge u")?, r.u32("edge v")?, r.u64("edge w")?));
    }
    let wbytes = r.take(n * WEIGHT_BYTES, "weights")?;
    let weights: Vec<u64> = wbytes
        .chunks_exact(WEIGHT_BYTES)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let nmarks = r.count("mark count", 4)?;
    let mut marks = Vec::with_capacity(nmarks);
    for _ in 0..nmarks {
        marks.push(r.u32("mark")?);
    }
    r.done("snapshot")?;
    let state = ForestState {
        n,
        edges,
        weights,
        marks,
    };
    state.validate().map_err(DecodeError)?;
    Ok((epoch, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_epoch() -> EpochRecord {
        EpochRecord {
            epoch: 42,
            flushes: vec![
                FlushRecord {
                    cuts: vec![(1, 2), (3, 4)],
                    links: vec![(5, 6, 77)],
                    eweights: vec![(0, 1, u64::MAX)],
                    vweights: vec![(9, 3, true), (2, 0, false)],
                },
                FlushRecord {
                    links: vec![(1, 2, 9)],
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn epoch_records_round_trip() {
        let rec = sample_epoch();
        let bytes = encode_epoch(&rec);
        assert_eq!(decode_epoch(&bytes).unwrap(), rec);
        assert_eq!(rec.ops(), 7);
        // Empty record.
        let empty = EpochRecord {
            epoch: 0,
            flushes: vec![],
        };
        assert_eq!(decode_epoch(&encode_epoch(&empty)).unwrap(), empty);
    }

    #[test]
    fn epoch_decode_rejects_every_truncation() {
        let bytes = encode_epoch(&sample_epoch());
        for cut in 0..bytes.len() {
            assert!(
                decode_epoch(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_epoch(&trailing).is_err(), "trailing byte accepted");
    }

    #[test]
    fn snapshots_round_trip() {
        let mut state = ForestState::from_edges(100, &[(0, 1, 5), (1, 2, 9), (50, 99, 1)]);
        state.weights[3] = 1234;
        state.marks = vec![0, 50];
        let bytes = encode_snapshot(7, &state);
        let (epoch, got) = decode_snapshot(&bytes).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(got, state);
    }

    #[test]
    fn snapshot_decode_rejects_truncations_and_bad_counts() {
        let state = ForestState::from_edges(10, &[(0, 1, 5)]);
        let bytes = encode_snapshot(1, &state);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Non-canonical payloads are rejected by validate: edge (1, 0).
        let mut bad = ForestState::from_edges(10, &[(0, 1, 5)]);
        bad.edges[0] = (1, 0, 5);
        assert!(decode_snapshot(&encode_snapshot(1, &bad)).is_err());
    }

    #[test]
    fn large_snapshot_parallel_sections_are_exact() {
        // Big enough that parallel_for actually chunks.
        let n = 60_000u32;
        let edges: Vec<(u32, u32, u64)> = (0..n - 1)
            .map(|i| (i, i + 1, (i as u64).wrapping_mul(0x9E37_79B9)))
            .collect();
        let mut state = ForestState::from_edges(n as usize, &edges);
        for v in 0..n as usize {
            state.weights[v] = (v as u64) << 17;
        }
        state.marks = (0..n).step_by(97).collect();
        let bytes = encode_snapshot(3, &state);
        let (_, got) = decode_snapshot(&bytes).unwrap();
        assert_eq!(got, state);
    }
}
