//! Snapshot files: one checksummed [`ForestState`] per file.
//!
//! A snapshot is the magic header followed by a single
//! [`frame`](crate::frame)-encoded payload
//! ([`codec::encode_snapshot`](crate::codec::encode_snapshot)). Files are
//! written to a temp name, fsynced, then atomically renamed into
//! `snap-<epoch>.rcsnap` — a reader never observes a half-written
//! snapshot, and a crash mid-write leaves only a stale `.tmp` that is
//! swept on open. Recovery takes the newest file that decodes and
//! checksums cleanly, falling back to older ones (a torn rename target is
//! just skipped).

use crate::codec::{decode_snapshot, encode_snapshot};
use crate::frame::{decode_frame, encode_frame};
use crate::wal::sync_parent_dir;
use rc_core::ForestState;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file (includes a format version).
pub const SNAP_MAGIC: [u8; 8] = *b"RCSNAP\x00\x01";

/// `snap-<epoch, zero-padded>.rcsnap`; zero-padding makes lexicographic
/// order equal epoch order.
pub fn snapshot_file_name(epoch: u64) -> String {
    format!("snap-{epoch:020}.rcsnap")
}

/// Parse an epoch out of a snapshot file name.
fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".rcsnap")?
        .parse()
        .ok()
}

/// Serialize `state` as the snapshot for `epoch` and atomically install
/// it in `dir`. Returns the final path. The state is validated first —
/// a non-canonical state would otherwise be written only to be rejected
/// by its own decoder at recovery time.
pub fn write_snapshot(dir: &Path, epoch: u64, state: &ForestState) -> std::io::Result<PathBuf> {
    state.validate().map_err(|why| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("refusing to snapshot a non-canonical state: {why}"),
        )
    })?;
    let payload = encode_snapshot(epoch, state);
    let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + payload.len() + 16);
    bytes.extend_from_slice(&SNAP_MAGIC);
    encode_frame(&mut bytes, &payload);
    let final_path = dir.join(snapshot_file_name(epoch));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(epoch)));
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    sync_parent_dir(&final_path)?;
    Ok(final_path)
}

/// Read and fully validate one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<(u64, ForestState), String> {
    let raw = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if raw.len() < SNAP_MAGIC.len() || raw[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(format!("{}: bad snapshot magic", path.display()));
    }
    let (payload, end) = decode_frame(&raw, SNAP_MAGIC.len())
        .ok_or_else(|| format!("{}: frame checksum/length invalid", path.display()))?;
    if end != raw.len() {
        return Err(format!("{}: trailing bytes after snapshot", path.display()));
    }
    decode_snapshot(payload).map_err(|e| format!("{}: {e}", path.display()))
}

/// All snapshot epochs present in `dir`, newest first.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(epoch) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((epoch, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(e, _)| std::cmp::Reverse(e));
    Ok(out)
}

/// Load the newest snapshot in `dir` that validates, skipping corrupt
/// ones. Also sweeps stale `.tmp` leftovers from crashed writes.
pub fn load_latest(dir: &Path) -> std::io::Result<Option<(u64, ForestState)>> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".tmp"))
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    for (epoch, path) in list_snapshots(dir)? {
        if let Ok((snap_epoch, state)) = read_snapshot(&path) {
            // The file name is advisory; the payload's epoch is
            // authoritative (and checksummed).
            let _ = epoch;
            return Ok(Some((snap_epoch, state)));
        }
    }
    Ok(None)
}

/// Delete every snapshot strictly older than `keep_epoch`.
pub fn remove_older_than(dir: &Path, keep_epoch: u64) -> std::io::Result<()> {
    for (epoch, path) in list_snapshots(dir)? {
        if epoch < keep_epoch {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rc-store-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_state() -> ForestState {
        let mut s = ForestState::from_edges(50, &[(0, 1, 3), (1, 2, 4), (10, 20, 5)]);
        s.weights[7] = 70;
        s.marks = vec![1, 20];
        s
    }

    #[test]
    fn write_then_load_latest() {
        let dir = tmp_dir("rt");
        write_snapshot(&dir, 10, &sample_state()).unwrap();
        let mut newer = sample_state();
        newer.weights[7] = 71;
        write_snapshot(&dir, 25, &newer).unwrap();
        let (epoch, state) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(epoch, 25);
        assert_eq!(state, newer);
        remove_older_than(&dir, 25).unwrap();
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        write_snapshot(&dir, 1, &sample_state()).unwrap();
        let newest = write_snapshot(&dir, 2, &sample_state()).unwrap();
        // Flip a payload byte in the newest file.
        let mut raw = std::fs::read(&newest).unwrap();
        let at = raw.len() - 3;
        raw[at] ^= 0xFF;
        std::fs::write(&newest, raw).unwrap();
        let (epoch, state) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(state, sample_state());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_tmp_files_are_swept_and_ignored() {
        let dir = tmp_dir("tmp-sweep");
        write_snapshot(&dir, 3, &sample_state()).unwrap();
        let stale = dir.join(format!("{}.tmp", snapshot_file_name(9)));
        std::fs::write(&stale, b"half-written").unwrap();
        let (epoch, _) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(epoch, 3);
        assert!(!stale.exists(), "stale tmp swept");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
