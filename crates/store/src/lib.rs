//! `rc-store` — durability for the serve tier: a checksummed epoch WAL,
//! parallel snapshots, batch-replay recovery, and log compaction.
//!
//! Every forest in this workspace lives in RAM; this crate is what makes
//! a process restart survivable. The design leans on the paper's core
//! observation — batch operations amortize far better than single ops —
//! by making *recovery itself* a batch-parallel workload:
//!
//! * the WAL persists each committed epoch as one frame holding the
//!   exact batch groups the coalescer committed
//!   ([`EpochRecord`]/[`FlushRecord`]), so replay goes through
//!   `batch_cut`/`batch_link` and the batched weight updates — the same
//!   `O(k log(1 + n/k))` paths that serve live traffic;
//! * snapshots serialize a canonical [`rc_core::ForestState`] (extracted
//!   via [`rc_core::DynamicForest::export_state`]) with the big sections
//!   encoded by parallel chunks, and restore through the parallel batch
//!   build ([`rc_core::ForestState::build_std_forest`]);
//! * recovery = newest valid snapshot + the WAL suffix, with torn tails
//!   (crash mid-write) detected by length/checksum framing and cut off.
//!
//! The write path is governed by [`SyncPolicy`] — per-epoch fsync for
//! full durability, interval fsync, or none — and [`Store::compact`]
//! bounds the log (and therefore recovery time) by folding it into a
//! fresh snapshot once it passes a size threshold.
//!
//! `rc-serve` integrates this as an optional `Durability` config: epoch
//! commit appends to the WAL *before* responses are released, so every
//! acknowledged update is at least written (and, under per-epoch sync,
//! durable) by the time the client sees its answer.
//!
//! ```
//! use rc_store::{Store, StoreConfig, EpochRecord, FlushRecord};
//!
//! let dir = std::env::temp_dir().join(format!("rc-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let recovered = Store::open(StoreConfig::new(&dir, 4)).unwrap();
//! assert_eq!(recovered.forest.num_edges(), 0);
//! let mut store = recovered.store;
//! store.append_epoch(&EpochRecord {
//!     epoch: 1,
//!     flushes: vec![FlushRecord { links: vec![(0, 1, 7)], ..Default::default() }],
//! }).unwrap();
//! store.close().unwrap();
//!
//! // A later process recovers the committed state by batch replay.
//! let recovered = Store::open(StoreConfig::new(&dir, 4)).unwrap();
//! assert!(recovered.forest.has_edge(0, 1));
//! assert_eq!(recovered.report.replayed_epochs, 1);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod codec;
pub mod frame;
mod metrics;
pub mod snapshot;
mod store;
pub mod wal;

pub use codec::{DecodeError, EpochRecord, FlushRecord};
pub use metrics::StoreMetrics;
pub use store::{
    replay_epoch, Recovered, RecoveryReport, Store, StoreConfig, StoreError, StoreForest,
};
pub use wal::{read_records, SyncPolicy, Wal, WalOpen, WAL_FILE};
