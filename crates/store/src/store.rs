//! The durability orchestrator: snapshot + WAL + batch-replay recovery.
//!
//! A store directory holds one [`Wal`] (`wal.rclog`) and zero or more
//! snapshot files. The lifecycle mirrors the serve tier's epochs:
//!
//! 1. **Append** — each committed epoch's update batches go to the WAL
//!    *before* the epoch's responses are released.
//! 2. **Compact** — once the log outgrows
//!    [`StoreConfig::compact_bytes`], the current forest state is
//!    written as a fresh snapshot and the log is truncated.
//! 3. **Recover** — [`Store::open`] loads the newest valid snapshot,
//!    restores it through the batch build
//!    ([`ForestState::build_std_forest`]), and replays the WAL suffix in
//!    epoch-sized batches (`batch_cut` / `batch_link` / batched weight
//!    updates per flush) — recovery itself is a batch-parallel workload,
//!    exactly the regime the paper's batch bounds favor.

use crate::codec::EpochRecord;
use crate::metrics::StoreMetrics;
use crate::snapshot;
use crate::wal::{SyncPolicy, Wal, WAL_FILE};
use rc_core::{BuildOptions, ForestError, ForestState, RcForest, StdAgg, StdVertexWeight};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The standard forest the store persists (the serve tier's forest type).
pub type StoreForest = RcForest<StdAgg>;

/// Durability configuration for one store directory.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the WAL and snapshots (created if absent).
    pub dir: PathBuf,
    /// Vertex count used when the directory is empty (an existing
    /// snapshot's `n` is authoritative thereafter).
    pub n: usize,
    /// When WAL bytes must reach the disk (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Compact (snapshot + truncate) once the WAL exceeds this many
    /// bytes. `u64::MAX` disables compaction.
    pub compact_bytes: u64,
    /// Options for rebuilds during recovery.
    pub build: BuildOptions,
    /// Fault injection for tests: appends fail (with `ENOSPC`-style
    /// errors) once this many have succeeded. `u64::MAX` = never. Hidden
    /// from docs; exists so the serve tier's failure path — reject, never
    /// hang — can be pinned end-to-end without a real full disk.
    #[doc(hidden)]
    pub fail_appends_after: u64,
}

impl StoreConfig {
    /// Per-epoch-fsync durability in `dir` over `n` vertices, 8 MiB
    /// compaction threshold.
    pub fn new(dir: impl Into<PathBuf>, n: usize) -> Self {
        StoreConfig {
            dir: dir.into(),
            n,
            sync: SyncPolicy::PerEpoch,
            compact_bytes: 8 << 20,
            build: BuildOptions::default(),
            fail_appends_after: u64::MAX,
        }
    }

    /// Replace the sync policy.
    pub fn sync_policy(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Replace the compaction threshold.
    pub fn compact_threshold(mut self, bytes: u64) -> Self {
        self.compact_bytes = bytes;
        self
    }

    /// Interval-fsync shorthand.
    pub fn sync_interval(self, every: Duration) -> Self {
        self.sync_policy(SyncPolicy::Interval(every))
    }
}

/// Anything that can go wrong opening or operating a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The on-disk state is internally inconsistent (a WAL suffix that
    /// does not apply to the snapshot it follows).
    Corrupt(String),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`Store::open`] found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from (0 = none/bootstrap).
    pub snapshot_epoch: u64,
    /// WAL epochs replayed on top of the snapshot.
    pub replayed_epochs: u64,
    /// Update ops across those epochs.
    pub replayed_ops: u64,
    /// Torn-tail bytes discarded from the WAL.
    pub truncated_bytes: u64,
    /// Highest epoch in the recovered state.
    pub last_epoch: u64,
}

/// An open store plus the recovered forest.
pub struct Recovered {
    /// The ready-to-append store.
    pub store: Store,
    /// The forest as of the last durable epoch.
    pub forest: StoreForest,
    /// Recovery statistics.
    pub report: RecoveryReport,
}

/// An open durability store (see the module docs).
pub struct Store {
    cfg: StoreConfig,
    wal: Wal,
    last_epoch: u64,
    appends: u64,
    metrics: StoreMetrics,
}

impl Store {
    /// Open `cfg.dir` (creating it if needed), recover the forest, and
    /// return the store positioned to append the next epoch.
    pub fn open(cfg: StoreConfig) -> Result<Recovered, StoreError> {
        Self::open_with_bootstrap(cfg, None)
    }

    /// Like [`Store::open`], but when the directory holds no state yet,
    /// install `bootstrap` as the epoch-0 snapshot first — the durable
    /// way to start serving a pre-built forest.
    pub fn open_with_bootstrap(
        cfg: StoreConfig,
        bootstrap: Option<&ForestState>,
    ) -> Result<Recovered, StoreError> {
        let metrics = StoreMetrics::default();
        let t_recovery = Instant::now();
        std::fs::create_dir_all(&cfg.dir)?;
        let mut snap = snapshot::load_latest(&cfg.dir)?;
        if snap.is_none() {
            if let Some(state) = bootstrap {
                snapshot::write_snapshot(&cfg.dir, 0, state)?;
                snap = Some((0, state.clone()));
            }
        }
        let opened = Wal::open(&cfg.dir.join(WAL_FILE), cfg.sync)?;
        let (snapshot_epoch, base) = snap.unwrap_or_else(|| (0, ForestState::empty(cfg.n)));
        // The log's frames apply on top of the snapshot it was compacted
        // against. If that snapshot (or a newer one) is gone — e.g. the
        // sole snapshot file rotted after compaction deleted the older
        // ones — replaying the suffix against an older base would
        // *silently* produce the wrong forest. Refuse loudly instead.
        if snapshot_epoch < opened.base_epoch {
            return Err(StoreError::Corrupt(format!(
                "WAL was compacted against snapshot epoch {} but the newest \
                 readable snapshot is epoch {snapshot_epoch} — the base \
                 snapshot is missing or corrupt",
                opened.base_epoch
            )));
        }
        let mut forest = base
            .build_std_forest(cfg.build)
            .map_err(|e| StoreError::Corrupt(format!("snapshot does not build: {e}")))?;
        let mut report = RecoveryReport {
            snapshot_epoch,
            truncated_bytes: opened.truncated_bytes,
            last_epoch: snapshot_epoch,
            ..Default::default()
        };
        for rec in &opened.records {
            // Frames the last compaction made redundant (crash between
            // snapshot install and truncation) are skipped, not re-applied.
            if rec.epoch <= snapshot_epoch {
                continue;
            }
            replay_epoch(&mut forest, rec)
                .map_err(|e| StoreError::Corrupt(format!("epoch {}: {e}", rec.epoch)))?;
            report.replayed_epochs += 1;
            report.replayed_ops += rec.ops() as u64;
            report.last_epoch = rec.epoch;
        }
        let mut wal = opened.wal;
        wal.set_metrics(metrics.clone());
        metrics
            .recovery_replayed_epochs_total
            .add(report.replayed_epochs);
        metrics
            .recovery_ns
            .add(t_recovery.elapsed().as_nanos() as u64);
        metrics.wal_bytes.set(wal.bytes() as i64);
        Ok(Recovered {
            store: Store {
                last_epoch: report.last_epoch,
                cfg,
                wal,
                appends: 0,
                metrics,
            },
            forest,
            report,
        })
    }

    /// Append one committed epoch. Epochs must be strictly monotone.
    ///
    /// On an I/O error the append is rolled back (buffer discarded, file
    /// truncated to the pre-append watermark, best effort) so the failed
    /// epoch can never resurface at recovery as if it had been
    /// acknowledged — the caller must treat the epoch as *not* durable.
    pub fn append_epoch(&mut self, rec: &EpochRecord) -> std::io::Result<()> {
        assert!(
            rec.epoch > self.last_epoch,
            "epoch {} appended after {}",
            rec.epoch,
            self.last_epoch
        );
        if self.appends >= self.cfg.fail_appends_after {
            return Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "injected append failure (fail_appends_after)",
            ));
        }
        let t = Instant::now();
        let before = self.wal.bytes();
        if let Err(e) = self.wal.append(rec) {
            self.wal.rollback_to(before);
            self.metrics.wal_bytes.set(self.wal.bytes() as i64);
            return Err(e);
        }
        self.appends += 1;
        self.last_epoch = rec.epoch;
        self.metrics.appends_total.inc();
        let dur = t.elapsed().as_nanos() as u64;
        self.metrics.append_ns.record(dur);
        self.metrics.append_exemplars.observe(
            dur,
            self.metrics
                .trace_ctx
                .load(std::sync::atomic::Ordering::Relaxed),
        );
        self.metrics.wal_bytes.set(self.wal.bytes() as i64);
        Ok(())
    }

    /// Attach a request-trace context to subsequent append/fsync
    /// latencies: `trace_id` becomes the exemplar for the next append's
    /// and fsync's latency octaves (`0` clears). The serve worker calls
    /// this before each epoch's WAL barrier so a slow `store_append_ns`
    /// or `wal_fsync_ns` bucket links back to a concrete request trace.
    pub fn note_trace_context(&self, trace_id: u64) {
        self.metrics
            .trace_ctx
            .store(trace_id, std::sync::atomic::Ordering::Relaxed);
    }

    /// Has the WAL outgrown the compaction threshold?
    pub fn wants_compaction(&self) -> bool {
        self.wal.bytes() > self.cfg.compact_bytes
    }

    /// Write `state` (the forest as of the last appended epoch) as a
    /// fresh snapshot, truncate the WAL, and drop older snapshots.
    pub fn compact(&mut self, state: &ForestState) -> Result<(), StoreError> {
        // Order matters for crash safety: the snapshot must be durable
        // before the WAL frames it supersedes disappear (and before the
        // base-epoch marker claims it exists).
        let t_compact = Instant::now();
        self.wal.sync()?;
        let t_snap = Instant::now();
        snapshot::write_snapshot(&self.cfg.dir, self.last_epoch, state)?;
        self.metrics.snapshots_total.inc();
        self.metrics
            .snapshot_ns
            .record(t_snap.elapsed().as_nanos() as u64);
        self.wal.truncate_to_empty(self.last_epoch)?;
        snapshot::remove_older_than(&self.cfg.dir, self.last_epoch)?;
        self.metrics.compactions_total.inc();
        self.metrics
            .compaction_ns
            .record(t_compact.elapsed().as_nanos() as u64);
        self.metrics.wal_bytes.set(self.wal.bytes() as i64);
        Ok(())
    }

    /// Flush + fsync the WAL now, regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Idle hook (see [`Wal::idle_sync`]): under `Interval` sync, fsync
    /// the dirty tail when traffic pauses so the documented "lose at most
    /// the last interval" bound holds across idle periods too.
    pub fn idle_sync(&mut self) -> std::io::Result<()> {
        self.wal.idle_sync()
    }

    /// Current WAL size in bytes (buffered bytes included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Highest epoch this store has durably seen.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.wal.sync_policy()
    }

    /// Live handles to this store's durability metrics (see
    /// [`StoreMetrics`]). Attach them into an owning registry with
    /// [`StoreMetrics::register_into`].
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Flush + fsync + close. Clean shutdown never loses an acknowledged
    /// epoch, whatever the sync policy.
    pub fn close(self) -> std::io::Result<()> {
        self.wal.close()
    }
}

/// Re-apply one epoch's committed batches through the same batch entry
/// points the serve tier used. Within a flush, cuts precede links: the
/// coalescer admitted every link without relying on the epoch's pending
/// cuts (cut-dependent links forced an earlier flush, landing them in a
/// later record), so links stay valid after the cuts are applied.
///
/// Public because replication followers apply shipped [`EpochRecord`]s
/// through exactly this path — steady-state follower apply *is* the
/// recovery replay, one epoch at a time.
pub fn replay_epoch(forest: &mut StoreForest, rec: &EpochRecord) -> Result<(), ForestError> {
    for f in &rec.flushes {
        if !f.cuts.is_empty() {
            forest.batch_cut(&f.cuts)?;
        }
        if !f.links.is_empty() {
            forest.batch_link(&f.links)?;
        }
        if !f.eweights.is_empty() {
            forest.update_edge_weights(&f.eweights)?;
        }
        if !f.vweights.is_empty() {
            let vw: Vec<(u32, StdVertexWeight)> = f
                .vweights
                .iter()
                .map(|&(v, weight, marked)| (v, StdVertexWeight { weight, marked }))
                .collect();
            forest.update_vertex_weights(&vw)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FlushRecord;
    use rc_core::DynamicForest;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rc-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn link_epoch(epoch: u64, links: &[(u32, u32, u64)]) -> EpochRecord {
        EpochRecord {
            epoch,
            flushes: vec![FlushRecord {
                links: links.to_vec(),
                ..Default::default()
            }],
        }
    }

    #[test]
    fn fresh_store_recovers_empty_then_replays_appends() {
        let dir = tmp_dir("fresh");
        let cfg = StoreConfig::new(&dir, 8);
        let r = Store::open(cfg.clone()).unwrap();
        assert_eq!(r.forest.num_edges(), 0);
        assert_eq!(r.report, RecoveryReport::default());
        let mut store = r.store;
        store
            .append_epoch(&link_epoch(1, &[(0, 1, 5), (1, 2, 6)]))
            .unwrap();
        store
            .append_epoch(&EpochRecord {
                epoch: 3,
                flushes: vec![FlushRecord {
                    cuts: vec![(0, 1)],
                    links: vec![(2, 3, 7)],
                    eweights: vec![(1, 2, 60)],
                    vweights: vec![(3, 9, true)],
                }],
            })
            .unwrap();
        store.close().unwrap();

        let r = Store::open(cfg).unwrap();
        assert_eq!(r.report.replayed_epochs, 2);
        assert_eq!(r.report.replayed_ops, 6);
        assert_eq!(r.report.last_epoch, 3);
        let mut f = r.forest;
        assert!(!f.has_edge(0, 1));
        assert_eq!(f.edge_weight(1, 2), Some(&60));
        assert_eq!(DynamicForest::nearest_marked(&mut f, 2), Some((7, 3)));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bootstrap_installs_epoch_zero_snapshot_once() {
        let dir = tmp_dir("bootstrap");
        let cfg = StoreConfig::new(&dir, 5);
        let state = ForestState::from_edges(5, &[(0, 1, 9), (1, 2, 8)]);
        let r = Store::open_with_bootstrap(cfg.clone(), Some(&state)).unwrap();
        assert_eq!(r.forest.num_edges(), 2);
        let mut store = r.store;
        store.append_epoch(&link_epoch(1, &[(3, 4, 1)])).unwrap();
        store.close().unwrap();
        // A second bootstrap with different state is ignored: the
        // directory already has history.
        let other = ForestState::empty(5);
        let r = Store::open_with_bootstrap(cfg, Some(&other)).unwrap();
        assert_eq!(r.forest.num_edges(), 3);
        assert_eq!(r.report.snapshot_epoch, 0);
        assert_eq!(r.report.replayed_epochs, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_truncates_wal_and_survives_recovery() {
        let dir = tmp_dir("compact");
        let cfg = StoreConfig::new(&dir, 100).compact_threshold(256);
        let mut r = Store::open(cfg.clone()).unwrap();
        let mut epoch = 0;
        let mut compactions = 0;
        for i in 0..50u32 {
            epoch += 1;
            r.store
                .append_epoch(&link_epoch(epoch, &[(i, i + 1, i as u64 + 1)]))
                .unwrap();
            replay_epoch(
                &mut r.forest,
                &link_epoch(epoch, &[(i, i + 1, i as u64 + 1)]),
            )
            .unwrap();
            if r.store.wants_compaction() {
                r.store.compact(&r.forest.export_state()).unwrap();
                compactions += 1;
            }
        }
        assert!(compactions >= 2, "threshold small enough to compact");
        assert!(r.store.wal_bytes() < 512);
        let want = r.forest.export_state();
        r.store.close().unwrap();

        let recovered = Store::open(cfg).unwrap();
        assert_eq!(recovered.forest.export_state(), want);
        assert_eq!(recovered.report.last_epoch, epoch);
        // Only the newest snapshot is retained.
        assert_eq!(snapshot::list_snapshots(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wal_suffix_older_than_snapshot_is_skipped() {
        // Crash between snapshot install and WAL truncation: frames ≤ the
        // snapshot epoch remain but must not be re-applied.
        let dir = tmp_dir("skip");
        let cfg = StoreConfig::new(&dir, 10);
        let mut r = Store::open(cfg.clone()).unwrap();
        r.store.append_epoch(&link_epoch(1, &[(0, 1, 5)])).unwrap();
        replay_epoch(&mut r.forest, &link_epoch(1, &[(0, 1, 5)])).unwrap();
        // Snapshot installed but WAL deliberately *not* truncated.
        snapshot::write_snapshot(&dir, 1, &r.forest.export_state()).unwrap();
        r.store.append_epoch(&link_epoch(2, &[(1, 2, 6)])).unwrap();
        r.store.close().unwrap();

        let recovered = Store::open(cfg).unwrap();
        assert_eq!(recovered.report.snapshot_epoch, 1);
        assert_eq!(recovered.report.replayed_epochs, 1, "only epoch 2");
        assert!(recovered.forest.has_edge(0, 1) && recovered.forest.has_edge(1, 2));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "appended after")]
    fn non_monotone_epochs_are_rejected() {
        let dir = tmp_dir("monotone");
        let mut r = Store::open(StoreConfig::new(&dir, 4)).unwrap();
        r.store.append_epoch(&link_epoch(2, &[(0, 1, 1)])).unwrap();
        let _ = r.store.append_epoch(&link_epoch(2, &[(1, 2, 1)]));
    }

    #[test]
    fn missing_base_snapshot_is_corrupt_not_silent() {
        // Compaction deletes older snapshots; if the lone remaining
        // snapshot later rots, the WAL suffix must NOT be replayed on an
        // empty base — the base-epoch marker makes this loud.
        let dir = tmp_dir("lost-snapshot");
        let cfg = StoreConfig::new(&dir, 50).compact_threshold(64);
        let mut r = Store::open(cfg.clone()).unwrap();
        for i in 0..8u32 {
            let rec = link_epoch(i as u64 + 1, &[(i, i + 1, 9)]);
            r.store.append_epoch(&rec).unwrap();
            replay_epoch(&mut r.forest, &rec).unwrap();
        }
        r.store.compact(&r.forest.export_state()).unwrap();
        r.store
            .append_epoch(&link_epoch(20, &[(20, 21, 1)]))
            .unwrap();
        r.store.close().unwrap();
        // Rot the sole snapshot.
        let (_, snap_path) = snapshot::list_snapshots(&dir).unwrap().pop().unwrap();
        let mut raw = std::fs::read(&snap_path).unwrap();
        let at = raw.len() - 2;
        raw[at] ^= 0xFF;
        std::fs::write(&snap_path, raw).unwrap();
        match Store::open(cfg) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("missing or corrupt"), "{msg}")
            }
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("silently recovered without the base snapshot"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_append_rolls_back_and_preserves_the_prefix() {
        // A frame that only half-reaches the file (simulated by writing
        // the torn bytes directly) must not resurface; appends after a
        // rollback land cleanly.
        let dir = tmp_dir("rollback");
        let mut r = Store::open(StoreConfig::new(&dir, 8)).unwrap();
        r.store.append_epoch(&link_epoch(1, &[(0, 1, 1)])).unwrap();
        let before = r.store.wal_bytes();
        r.store.wal.rollback_to(before); // no-op rollback at the watermark
        assert_eq!(r.store.wal_bytes(), before);
        r.store.append_epoch(&link_epoch(2, &[(1, 2, 1)])).unwrap();
        r.store.close().unwrap();
        let rec = Store::open(StoreConfig::new(&dir, 8)).unwrap();
        assert_eq!(rec.report.replayed_epochs, 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn inconsistent_wal_is_reported_corrupt() {
        // A WAL whose ops cannot apply to the snapshot (cut of a missing
        // edge) must surface as Corrupt, not silently diverge.
        let dir = tmp_dir("corrupt");
        let cfg = StoreConfig::new(&dir, 4);
        let mut r = Store::open(cfg.clone()).unwrap();
        r.store
            .append_epoch(&EpochRecord {
                epoch: 1,
                flushes: vec![FlushRecord {
                    cuts: vec![(0, 1)], // never linked
                    ..Default::default()
                }],
            })
            .unwrap();
        r.store.close().unwrap();
        match Store::open(cfg) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("epoch 1"), "{msg}"),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("expected Corrupt, got a recovered store"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
