//! The write-ahead log: one append-only file of epoch frames.
//!
//! Layout: a 16-byte header (magic + the *base epoch* the log was last
//! compacted against), then [`frame`](crate::frame)-encoded
//! [`EpochRecord`]s. Opening scans the file, keeps the longest valid
//! frame prefix, **physically truncates** any torn tail (a crash mid
//! write leaves a half frame — standard WAL recovery), and positions
//! appends after the last valid frame. The base epoch lets recovery
//! refuse a log whose base snapshot is missing or corrupt instead of
//! silently replaying the suffix against the wrong state.
//!
//! # Sync policy
//!
//! [`SyncPolicy`] is the durability/latency dial of the serve tier:
//!
//! * [`PerEpoch`](SyncPolicy::PerEpoch) — `write` + `fsync` before the
//!   epoch's responses are released: an acknowledged update survives
//!   power loss. Highest latency.
//! * [`Interval`](SyncPolicy::Interval) — `write` on every append (the
//!   OS has the bytes; a *process* crash loses nothing acknowledged),
//!   `fsync` at most once per interval: power loss can lose the last
//!   interval's epochs. Interval fsyncs piggyback on appends, so a
//!   driver that goes idle must call [`Wal::idle_sync`] (the serve
//!   worker does, before sleeping) — otherwise the final burst stays
//!   volatile for as long as traffic is quiet.
//! * [`Never`](SyncPolicy::Never) — appends accumulate in a user-space
//!   buffer flushed by size (and always on close): minimal overhead, a
//!   crash can lose everything since the last size-triggered flush.
//!
//! Every policy flushes *and* fsyncs on [`Wal::close`] — clean shutdown
//! never loses an acknowledged epoch.

use crate::codec::{decode_epoch, encode_epoch, EpochRecord};
use crate::frame::{encode_frame, scan_frames};
use crate::metrics::StoreMetrics;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Magic bytes opening every WAL file (includes a format version).
pub const WAL_MAGIC: [u8; 8] = *b"RCWLOG\x00\x02";

/// Full header: magic + the *base epoch* (`u64` LE) — the epoch of the
/// snapshot the log was last compacted against. Recovery refuses a log
/// whose base epoch has no surviving snapshot ≥ it: replaying a suffix
/// against an older (or missing) base would silently diverge.
pub const WAL_HEADER: usize = WAL_MAGIC.len() + 8;

/// File name of the log inside a store directory.
pub const WAL_FILE: &str = "wal.rclog";

/// Buffered bytes that force a flush under [`SyncPolicy::Never`].
const NEVER_FLUSH_BYTES: usize = 64 << 10;

/// When to push WAL bytes toward the disk (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `write` + `fsync` on every epoch append.
    PerEpoch,
    /// `write` on every append, `fsync` at most once per interval.
    Interval(Duration),
    /// Buffer in user space; flush by size and on close only.
    Never,
}

/// Outcome of opening (and recovering) a WAL file.
pub struct WalOpen {
    /// The ready-to-append log.
    pub wal: Wal,
    /// Every epoch record in the valid prefix, in file order.
    pub records: Vec<EpochRecord>,
    /// Bytes of torn tail discarded (0 on a clean file).
    pub truncated_bytes: u64,
    /// Snapshot epoch this log's frames apply on top of (0 for a log
    /// that was never compacted).
    pub base_epoch: u64,
}

/// An open write-ahead log (see the module docs).
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Logical length: header + every appended frame (including bytes
    /// still in `buf`).
    bytes: u64,
    sync: SyncPolicy,
    buf: Vec<u8>,
    last_fsync: Instant,
    /// Bytes written to the file since the last fsync.
    dirty: bool,
    /// A truncation failed partway: the physical file layout no longer
    /// matches the accounting, so any further write could land at a
    /// bogus offset and masquerade as valid frames. All writes refuse.
    poisoned: bool,
    /// Fsync/byte instrumentation (default handles when the WAL is used
    /// standalone; the owning [`crate::Store`] installs its own).
    metrics: StoreMetrics,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, recover the valid
    /// prefix and truncate any torn tail.
    ///
    /// A frame that passes its checksum but fails epoch decoding is
    /// treated like a torn tail: the scan stops and the file is truncated
    /// there. (Checksums make this vanishingly unlikely without real
    /// corruption; recovering the prefix beats refusing to start.) A file
    /// cut *inside* the 16-byte header is a torn creation or a log whose
    /// every frame is gone — either way nothing is recoverable from it,
    /// so it restarts empty with base epoch 0.
    pub fn open(path: &Path, sync: SyncPolicy) -> std::io::Result<WalOpen> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if raw.len() < WAL_HEADER {
            let magic_prefix = WAL_MAGIC.len().min(raw.len());
            if raw[..magic_prefix] != WAL_MAGIC[..magic_prefix] {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not an rc-store WAL (bad magic)", path.display()),
                ));
            }
            return Self::fresh(file, path, sync, raw.len() as u64);
        }
        if raw[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not an rc-store WAL (bad magic)", path.display()),
            ));
        }
        let base_epoch = u64::from_le_bytes(raw[WAL_MAGIC.len()..WAL_HEADER].try_into().unwrap());
        // One pass: decode frames, tracking the end offset of the last
        // frame that decoded cleanly (a checksum-valid frame whose payload
        // fails decoding cuts the prefix there, like a torn tail).
        let mut records = Vec::new();
        let mut valid_end = WAL_HEADER as u64;
        let mut decode_failed = false;
        scan_frames(&raw, WAL_HEADER, |payload| {
            if decode_failed {
                return;
            }
            match decode_epoch(payload) {
                Ok(rec) => {
                    records.push(rec);
                    valid_end += (crate::frame::FRAME_HEADER + payload.len()) as u64;
                }
                Err(_) => decode_failed = true,
            }
        });
        let truncated_bytes = raw.len() as u64 - valid_end;
        if truncated_bytes > 0 {
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                bytes: valid_end,
                sync,
                buf: Vec::new(),
                last_fsync: Instant::now(),
                dirty: false,
                poisoned: false,
                metrics: StoreMetrics::default(),
            },
            records,
            truncated_bytes,
            base_epoch,
        })
    }

    /// (Re)initialize `file` as an empty log with base epoch 0.
    fn fresh(
        mut file: File,
        path: &Path,
        sync: SyncPolicy,
        truncated_bytes: u64,
    ) -> std::io::Result<WalOpen> {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&0u64.to_le_bytes())?;
        file.sync_all()?;
        sync_parent_dir(path)?;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                bytes: WAL_HEADER as u64,
                sync,
                buf: Vec::new(),
                last_fsync: Instant::now(),
                dirty: false,
                poisoned: false,
                metrics: StoreMetrics::default(),
            },
            records: Vec::new(),
            truncated_bytes,
            base_epoch: 0,
        })
    }

    /// Append one epoch record and apply the sync policy. On return under
    /// [`SyncPolicy::PerEpoch`] the record is on disk; under `Interval`
    /// it is in the OS; under `Never` it may still be buffered.
    pub fn append(&mut self, rec: &EpochRecord) -> std::io::Result<()> {
        self.poison_check()?;
        let payload = encode_epoch(rec);
        let before = self.buf.len();
        encode_frame(&mut self.buf, &payload);
        self.bytes += (self.buf.len() - before) as u64;
        match self.sync {
            SyncPolicy::PerEpoch => {
                self.flush_buf()?;
                self.fsync()?;
            }
            SyncPolicy::Interval(every) => {
                self.flush_buf()?;
                if self.dirty && self.last_fsync.elapsed() >= every {
                    self.fsync()?;
                }
            }
            SyncPolicy::Never => {
                if self.buf.len() >= NEVER_FLUSH_BYTES {
                    self.flush_buf()?;
                }
            }
        }
        Ok(())
    }

    /// Logical size in bytes (header + frames, buffered included) — the
    /// compaction trigger.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replace the default metric handles with the owning store's (so
    /// fsync timings land in the store's [`StoreMetrics`]).
    pub(crate) fn set_metrics(&mut self, metrics: StoreMetrics) {
        self.metrics = metrics;
    }

    fn poison_check(&self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "WAL poisoned by a partially failed truncation; no further writes",
            ));
        }
        Ok(())
    }

    /// Write buffered frames to the file.
    fn flush_buf(&mut self) -> std::io::Result<()> {
        self.poison_check()?;
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.metrics.append_bytes_total.add(self.buf.len() as u64);
            self.buf.clear();
            self.dirty = true;
        }
        Ok(())
    }

    fn fsync(&mut self) -> std::io::Result<()> {
        if self.dirty {
            let t = Instant::now();
            self.file.sync_all()?;
            self.metrics.fsyncs_total.inc();
            let dur = t.elapsed().as_nanos() as u64;
            self.metrics.fsync_ns.record(dur);
            self.metrics.fsync_exemplars.observe(
                dur,
                self.metrics
                    .trace_ctx
                    .load(std::sync::atomic::Ordering::Relaxed),
            );
            self.dirty = false;
            self.last_fsync = Instant::now();
        }
        Ok(())
    }

    /// Flush buffers and fsync now, regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush_buf()?;
        self.fsync()
    }

    /// Has a failed truncation made this log unwritable?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Best-effort rollback to a previous [`Wal::bytes`] watermark after
    /// a failed append: discard buffered bytes and truncate the file so
    /// the half-written (or durability-ambiguous) frame cannot resurface
    /// at recovery as if it had been acknowledged. Errors are swallowed —
    /// the caller is already on a failure path, and a leftover partial
    /// frame is still cut by the torn-tail scan.
    pub fn rollback_to(&mut self, bytes: u64) {
        // Under `Never`, `bytes` (a logical watermark) can exceed the
        // physical file: acknowledged-but-buffered epochs die with the
        // discarded buffer, exactly as the policy's crash contract allows.
        self.buf.clear();
        let file_keep = match self.file.metadata() {
            Ok(m) => m.len().min(bytes),
            Err(_) => return, // fd unusable; torn-tail scan cleans up later
        };
        if self.file.set_len(file_keep).is_ok() {
            let _ = self.file.seek(SeekFrom::Start(file_keep));
            let _ = self.file.sync_all();
        }
        self.bytes = file_keep;
        self.dirty = false;
    }

    /// Drop every frame (after the snapshot for `base_epoch` made them
    /// redundant): truncate back to the header, record the new base
    /// epoch, fsync. The caller must have made that snapshot durable
    /// *first* — the base epoch is what lets recovery detect a log whose
    /// base snapshot has gone missing.
    pub fn truncate_to_empty(&mut self, base_epoch: u64) -> std::io::Result<()> {
        self.poison_check()?;
        self.buf.clear();
        // Any failure below leaves the file layout out of step with the
        // accounting (cursor inside the header, stale length): poison the
        // log so no later write can land at a bogus offset and surface at
        // recovery as a valid frame. The caller must stop serving.
        let result = (|| -> std::io::Result<()> {
            self.file.set_len(WAL_HEADER as u64)?;
            self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
            self.file.write_all(&base_epoch.to_le_bytes())?;
            self.file.seek(SeekFrom::Start(WAL_HEADER as u64))?;
            self.file.sync_all()?;
            Ok(())
        })();
        if result.is_err() {
            self.poisoned = true;
            return result;
        }
        self.bytes = WAL_HEADER as u64;
        self.dirty = false;
        self.last_fsync = Instant::now();
        Ok(())
    }

    /// Idle hook for [`SyncPolicy::Interval`]: fsync any dirty tail now
    /// that no traffic is arriving (interval fsyncs otherwise only
    /// piggyback on appends, which would leave the final burst volatile
    /// for as long as the queue stays empty). No-op for other policies —
    /// `PerEpoch` is never dirty, `Never` opts out of fsync by design.
    pub fn idle_sync(&mut self) -> std::io::Result<()> {
        if matches!(self.sync, SyncPolicy::Interval(_)) {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush + fsync + close. Clean shutdown must come through here (or
    /// [`Wal::sync`]) so no acknowledged tail stays buffered; `Drop` also
    /// flushes best-effort.
    pub fn close(mut self) -> std::io::Result<()> {
        self.sync()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if !self.poisoned {
            let _ = self.flush_buf();
            let _ = self.fsync();
        }
    }
}

/// Read-only scan of a WAL file: decode the valid frame prefix and
/// return `(base_epoch, records)` **without truncating, seeking, or
/// otherwise mutating the file** — safe to run against a live log whose
/// owning [`Wal`] handle is still appending (the replication leader
/// serves catch-up suffixes this way). A torn tail is simply ignored; a
/// file cut inside the header yields an empty record set with base
/// epoch 0, mirroring [`Wal::open`]'s recovery semantics.
pub fn read_records(path: &Path) -> std::io::Result<(u64, Vec<EpochRecord>)> {
    let raw = std::fs::read(path)?;
    if raw.len() < WAL_HEADER {
        let magic_prefix = WAL_MAGIC.len().min(raw.len());
        if raw[..magic_prefix] != WAL_MAGIC[..magic_prefix] {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not an rc-store WAL (bad magic)", path.display()),
            ));
        }
        return Ok((0, Vec::new()));
    }
    if raw[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} is not an rc-store WAL (bad magic)", path.display()),
        ));
    }
    let base_epoch = u64::from_le_bytes(raw[WAL_MAGIC.len()..WAL_HEADER].try_into().unwrap());
    let mut records = Vec::new();
    let mut decode_failed = false;
    scan_frames(&raw, WAL_HEADER, |payload| {
        if decode_failed {
            return;
        }
        match decode_epoch(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => decode_failed = true,
        }
    });
    Ok((base_epoch, records))
}

/// fsync the parent directory so a freshly created file's directory entry
/// is durable (no-op if the parent cannot be opened — e.g. on platforms
/// without directory fds).
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FlushRecord;

    fn rec(epoch: u64, links: &[(u32, u32, u64)]) -> EpochRecord {
        EpochRecord {
            epoch,
            flushes: vec![FlushRecord {
                links: links.to_vec(),
                ..Default::default()
            }],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rc-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path, SyncPolicy::PerEpoch).unwrap().wal;
        for e in 1..=5u64 {
            wal.append(&rec(e, &[(e as u32, e as u32 + 1, e)])).unwrap();
        }
        wal.close().unwrap();
        let opened = Wal::open(&path, SyncPolicy::PerEpoch).unwrap();
        assert_eq!(opened.truncated_bytes, 0);
        assert_eq!(
            opened.records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_offset() {
        let dir = tmp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path, SyncPolicy::PerEpoch).unwrap().wal;
        wal.append(&rec(1, &[(0, 1, 7)])).unwrap();
        let keep = std::fs::metadata(&path).unwrap().len();
        wal.append(&rec(2, &[(1, 2, 8), (3, 4, 9)])).unwrap();
        wal.close().unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in keep..full.len() as u64 {
            let p = dir.join(format!("cut-{cut}.rclog"));
            std::fs::write(&p, &full[..cut as usize]).unwrap();
            let opened = Wal::open(&p, SyncPolicy::PerEpoch).unwrap();
            assert_eq!(opened.records.len(), 1, "cut {cut}");
            assert_eq!(opened.records[0].epoch, 1);
            assert_eq!(opened.truncated_bytes, cut - keep);
            assert_eq!(std::fs::metadata(&p).unwrap().len(), keep, "cut {cut}");
            drop(opened);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn appends_resume_after_torn_tail_recovery() {
        let dir = tmp_dir("resume");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path, SyncPolicy::PerEpoch).unwrap().wal;
        wal.append(&rec(1, &[(0, 1, 7)])).unwrap();
        wal.close().unwrap();
        // Simulate a torn write.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &raw).unwrap();
        let mut opened = Wal::open(&path, SyncPolicy::PerEpoch).unwrap();
        assert_eq!(opened.truncated_bytes, 5);
        opened.wal.append(&rec(2, &[(1, 2, 8)])).unwrap();
        opened.wal.close().unwrap();
        let reread = Wal::open(&path, SyncPolicy::PerEpoch).unwrap();
        assert_eq!(
            reread.records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn never_policy_buffers_until_close() {
        let dir = tmp_dir("never");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap().wal;
        wal.append(&rec(1, &[(0, 1, 7)])).unwrap();
        // Nothing past the header reached the file yet...
        assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_HEADER as u64);
        assert!(wal.bytes() > WAL_HEADER as u64);
        // ...but close flushes the pending tail.
        wal.close().unwrap();
        let opened = Wal::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(opened.records.len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncate_to_empty_resets_for_compaction() {
        let dir = tmp_dir("compact");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path, SyncPolicy::PerEpoch).unwrap().wal;
        for e in 1..=3 {
            wal.append(&rec(e, &[(0, 1, e)])).unwrap();
        }
        wal.truncate_to_empty(3).unwrap();
        assert_eq!(wal.bytes(), WAL_HEADER as u64);
        wal.append(&rec(4, &[(0, 1, 4)])).unwrap();
        wal.close().unwrap();
        let opened = Wal::open(&path, SyncPolicy::PerEpoch).unwrap();
        assert_eq!(
            opened.records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![4]
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_header_recovers_as_empty() {
        let dir = tmp_dir("torn-header");
        let path = dir.join(WAL_FILE);
        let mut full_header = WAL_MAGIC.to_vec();
        full_header.extend_from_slice(&7u64.to_le_bytes());
        for cut in 0..WAL_HEADER {
            std::fs::write(&path, &full_header[..cut]).unwrap();
            let opened = Wal::open(&path, SyncPolicy::PerEpoch).unwrap();
            assert!(opened.records.is_empty(), "cut {cut}");
            assert_eq!(opened.truncated_bytes, cut as u64);
            drop(opened);
        }
        // A non-prefix short file is still foreign.
        std::fs::write(&path, b"XYZ").unwrap();
        assert!(Wal::open(&path, SyncPolicy::PerEpoch).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn read_records_scans_live_log_without_mutating() {
        let dir = tmp_dir("readonly");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path, SyncPolicy::PerEpoch).unwrap().wal;
        for e in 1..=3u64 {
            wal.append(&rec(e, &[(0, 1, e)])).unwrap();
        }
        // Scan while the writer still holds the file open.
        let (base, records) = read_records(&path).unwrap();
        assert_eq!(base, 0);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // A torn tail is ignored, not truncated: the file keeps its bytes
        // and the live handle can continue appending afterwards.
        let len_before = std::fs::metadata(&path).unwrap().len();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xCD; 6]);
        std::fs::write(&path, &raw).unwrap();
        let (_, records) = read_records(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before + 6,
            "read_records must never truncate"
        );
        drop(wal);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn foreign_files_are_rejected() {
        let dir = tmp_dir("foreign");
        let path = dir.join(WAL_FILE);
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::open(&path, SyncPolicy::PerEpoch).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
