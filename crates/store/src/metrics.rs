//! Store-side metric handles: append/fsync/snapshot/compaction/recovery
//! timings and byte counters.
//!
//! The store creates its [`StoreMetrics`] when it opens — *before* any
//! owning registry exists — and records through the `Arc` handles on
//! every durability operation. A serve tier that wants the store's
//! numbers in its own [`rc_obs::MetricsRegistry`] calls
//! [`StoreMetrics::register_into`] once, which attaches the live handles
//! under `store_`/`wal_`-prefixed names: no copying, no sampling lag.
//! A store used standalone (no registry) still pays only the relaxed
//! atomic increments.

use rc_obs::{Counter, Exemplars, Gauge, Histogram, MetricsRegistry};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Shared handles to every metric the store records. Cheap to clone
/// (a handful of `Arc`s); one clone lives inside the [`Wal`](crate::Wal)
/// for the fsync-path metrics.
#[derive(Clone, Debug, Default)]
pub struct StoreMetrics {
    /// Epoch records appended to the WAL (successful appends only).
    pub appends_total: Arc<Counter>,
    /// WAL frame bytes written to the file (buffered bytes count when
    /// they flush).
    pub append_bytes_total: Arc<Counter>,
    /// Wall time of [`Store::append_epoch`](crate::Store::append_epoch),
    /// fsync included when the policy demands one.
    pub append_ns: Arc<Histogram>,
    /// `fsync` calls issued by the WAL.
    pub fsyncs_total: Arc<Counter>,
    /// Wall time of each WAL `fsync`.
    pub fsync_ns: Arc<Histogram>,
    /// Snapshot files written (compactions and bootstrap installs that
    /// go through [`Store::compact`](crate::Store::compact)).
    pub snapshots_total: Arc<Counter>,
    /// Wall time of each snapshot serialization + write.
    pub snapshot_ns: Arc<Histogram>,
    /// Completed compaction cycles (snapshot + WAL truncation).
    pub compactions_total: Arc<Counter>,
    /// Wall time of each full compaction cycle.
    pub compaction_ns: Arc<Histogram>,
    /// WAL epochs replayed during recovery at open.
    pub recovery_replayed_epochs_total: Arc<Counter>,
    /// Total nanoseconds spent recovering at open (snapshot load +
    /// rebuild + WAL replay). A counter, not a histogram: open happens
    /// once per store, and totals across re-opens are the useful number.
    pub recovery_ns: Arc<Counter>,
    /// Current logical WAL size in bytes (buffered bytes included).
    pub wal_bytes: Arc<Gauge>,
    /// Trace context for exemplars: the trace id of the epoch currently
    /// being appended (0 = none). Set via
    /// [`Store::note_trace_context`](crate::Store::note_trace_context)
    /// by the serve worker before each epoch's WAL barrier.
    pub trace_ctx: Arc<AtomicU64>,
    /// Per-latency-octave trace-id exemplars on the append path: links a
    /// slow `store_append_ns` bucket back to the epoch's trace.
    pub append_exemplars: Arc<Exemplars>,
    /// Per-latency-octave trace-id exemplars on the fsync path.
    pub fsync_exemplars: Arc<Exemplars>,
}

impl StoreMetrics {
    /// Attach every handle into `reg` under its canonical name
    /// (`store_*` for store-level operations, `wal_*` for the fsync
    /// path). Idempotent for the same handles; panics if a name is
    /// already taken by a *different* handle — that is a wiring bug.
    pub fn register_into(&self, reg: &MetricsRegistry) {
        reg.attach_counter("store_appends_total", self.appends_total.clone());
        reg.attach_counter("store_append_bytes_total", self.append_bytes_total.clone());
        reg.attach_histogram("store_append_ns", self.append_ns.clone());
        reg.attach_counter("wal_fsyncs_total", self.fsyncs_total.clone());
        reg.attach_histogram("wal_fsync_ns", self.fsync_ns.clone());
        reg.attach_counter("store_snapshots_total", self.snapshots_total.clone());
        reg.attach_histogram("store_snapshot_ns", self.snapshot_ns.clone());
        reg.attach_counter("store_compactions_total", self.compactions_total.clone());
        reg.attach_histogram("store_compaction_ns", self.compaction_ns.clone());
        reg.attach_counter(
            "store_recovery_replayed_epochs_total",
            self.recovery_replayed_epochs_total.clone(),
        );
        reg.attach_counter("store_recovery_ns", self.recovery_ns.clone());
        reg.attach_gauge("store_wal_bytes", self.wal_bytes.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_into_is_idempotent_and_live() {
        let m = StoreMetrics::default();
        let reg = MetricsRegistry::new();
        m.register_into(&reg);
        m.register_into(&reg); // same handles: no panic
        m.appends_total.add(3);
        m.fsync_ns.record(1_000);
        m.wal_bytes.set(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("store_appends_total"), Some(3));
        assert_eq!(snap.histogram("wal_fsync_ns").unwrap().count, 1);
        assert_eq!(snap.gauge("store_wal_bytes"), Some(42));
    }
}
