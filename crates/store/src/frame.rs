//! Length-prefixed, checksummed binary frames — the unit of WAL append.
//!
//! Wire layout of one frame:
//!
//! ```text
//! ┌───────────┬───────────┬───────────────┐
//! │ len: u32  │ crc: u32  │ payload (len) │   all little-endian
//! └───────────┴───────────┴───────────────┘
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload bytes only. A frame is valid
//! iff the full header is present, `len` is within [`MAX_FRAME_LEN`], the
//! payload is fully present, and the checksum matches. [`scan_frames`]
//! walks a buffer frame by frame and stops at the first violation — the
//! byte offset it returns is the **valid prefix length**, which is how a
//! torn tail (a crash mid-`write`) is detected and discarded on open.

/// Upper bound on one frame's payload (64 MiB) — a length word beyond
/// this is garbage, not a frame, and terminates the scan.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Bytes of frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`).
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Append one frame (header + payload) to `out`.
pub fn encode_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() as u64 <= MAX_FRAME_LEN as u64,
        "oversized frame"
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode the frame starting at `buf[at..]`. Returns the payload slice
/// and the offset just past the frame, or `None` if the bytes at `at` do
/// not form a complete, checksum-valid frame.
pub fn decode_frame(buf: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let header = buf.get(at..at + FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return None;
    }
    let start = at + FRAME_HEADER;
    let payload = buf.get(start..start + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, start + len as usize))
}

/// Walk `buf` from `from`, yielding each valid frame's payload range and
/// returning the end offset of the valid prefix (== `buf.len()` when the
/// tail is clean).
pub fn scan_frames(buf: &[u8], from: usize, mut each: impl FnMut(&[u8])) -> usize {
    let mut at = from;
    while let Some((payload, next)) = decode_frame(buf, at) {
        each(payload);
        at = next;
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip_and_concatenate() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"alpha");
        encode_frame(&mut buf, b"");
        encode_frame(&mut buf, &[7u8; 1000]);
        let mut seen: Vec<Vec<u8>> = Vec::new();
        let end = scan_frames(&buf, 0, |p| seen.push(p.to_vec()));
        assert_eq!(end, buf.len());
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], b"alpha");
        assert!(seen[1].is_empty());
        assert_eq!(seen[2], vec![7u8; 1000]);
    }

    #[test]
    fn torn_tails_are_cut_at_every_offset() {
        // Truncating anywhere inside the last frame must yield exactly the
        // frames before it; corrupting any payload byte must cut there too.
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"first");
        let keep = buf.len();
        encode_frame(&mut buf, b"second frame payload");
        for cut in keep..buf.len() {
            let mut count = 0;
            let end = scan_frames(&buf[..cut], 0, |_| count += 1);
            assert_eq!(count, 1, "cut at {cut}");
            assert_eq!(end, keep, "cut at {cut}");
        }
        for flip in keep + FRAME_HEADER..buf.len() {
            let mut bad = buf.clone();
            bad[flip] ^= 0x40;
            let mut count = 0;
            assert_eq!(scan_frames(&bad, 0, |_| count += 1), keep);
            assert_eq!(count, 1, "flip at {flip}");
        }
    }

    #[test]
    fn absurd_length_words_do_not_scan() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"ok");
        let keep = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // len > MAX_FRAME_LEN
        buf.extend_from_slice(&[0; 12]);
        let mut count = 0;
        assert_eq!(scan_frames(&buf, 0, |_| count += 1), keep);
        assert_eq!(count, 1);
    }
}
