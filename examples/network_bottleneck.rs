//! Bottleneck routing on a dynamic network.
//!
//! A service topology (tree) where edge weights are link capacities.
//! Batch path-minimum queries report each route's bottleneck link; when
//! links are re-provisioned (cut + link), queries reflect the change
//! immediately. Uses `MinEdgeAgg`, which also *identifies* the bottleneck
//! edge — exactly what an operator needs to upgrade.

use rc_parlay::rng::SplitMix64;
use rcforest::{MinEdgeAgg, TernaryForest};

fn main() {
    let n = 10_000u32;
    let mut rng = SplitMix64::new(2026);

    // A random spanning topology with capacities 1..10_000 Mbit.
    // Chain weight u64::MAX: dummy chain edges never win a minimum.
    let mut net = TernaryForest::<MinEdgeAgg<u64>>::new(n as usize, u64::MAX);
    let links: Vec<(u32, u32, u64)> = (1..n)
        .map(|v| {
            (
                rng.next_below(v as u64) as u32,
                v,
                1 + rng.next_below(10_000),
            )
        })
        .collect();
    net.batch_link(&links).expect("spanning tree");

    // 5 routes to health-check, in one batch.
    let routes: Vec<(u32, u32)> = (0..5)
        .map(|_| {
            (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            )
        })
        .collect();
    println!("route bottlenecks:");
    let answers = net.batch_path_extrema(&routes);
    for (i, &(s, t)) in routes.iter().enumerate() {
        match &answers[i] {
            Some(Some(e)) => println!(
                "  {s:>5} -> {t:<5}  bottleneck {:>5} Mbit on link ({}, {})",
                e.w,
                net.owner_of(e.u),
                net.owner_of(e.v)
            ),
            Some(None) => println!("  {s:>5} -> {t:<5}  trivial route"),
            None => println!("  {s:>5} -> {t:<5}  no route"),
        }
    }

    // Upgrade the worst link of route 0 and re-check.
    if let Some(Some(e)) = answers[0] {
        let (u, v) = (net.owner_of(e.u), net.owner_of(e.v));
        println!("\nupgrading link ({u}, {v}) from {} to 100000 Mbit", e.w);
        net.update_edge_weights(&[(u, v, 100_000)]).unwrap();
        let again = net.batch_path_extrema(&routes[0..1]);
        if let Some(Some(e2)) = &again[0] {
            println!(
                "new bottleneck for route {:?}: {} Mbit on ({}, {})",
                routes[0],
                e2.w,
                net.owner_of(e2.u),
                net.owner_of(e2.v)
            );
        }
    }
}
