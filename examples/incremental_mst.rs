//! Streaming minimum spanning forest (paper §5.8).
//!
//! Edges of a random graph arrive in batches; the MSF is maintained with
//! compressed-path-tree + Kruskal batches and verified against offline
//! Kruskal at the end.

use rc_parlay::rng::SplitMix64;
use rcforest::{kruskal, IncrementalMsf};

fn main() {
    let n = 20_000usize;
    let batches = 10usize;
    let k = 5_000usize;
    let mut rng = SplitMix64::new(7);

    let mut msf = IncrementalMsf::new(n);
    let mut all_edges: Vec<(u32, u32, u64)> = Vec::new();

    for b in 0..batches {
        let batch: Vec<(u32, u32, u64)> = (0..k)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                    1 + rng.next_below(1_000_000),
                )
            })
            .collect();
        all_edges.extend(batch.iter().copied());
        let (stats, t) = msf.insert_batch_timed(&batch);
        println!(
            "batch {b:>2}: +{:<5} edges, {:>4} evicted, {:>5} rejected, cpt {:>5} vertices, {:>8.3} ms (cpt {:>7.3} / kruskal {:>7.3} / update {:>7.3})",
            stats.inserted,
            stats.evicted,
            stats.rejected,
            stats.cpt_vertices,
            t.total.as_secs_f64() * 1e3,
            t.cpt.as_secs_f64() * 1e3,
            t.kruskal.as_secs_f64() * 1e3,
            t.forest_update.as_secs_f64() * 1e3,
        );
    }

    let offline: u64 = kruskal(n, &all_edges).iter().map(|&i| all_edges[i].2).sum();
    println!("\nincremental MSF weight: {}", msf.total_weight());
    println!("offline  MSF weight:    {offline}");
    assert_eq!(
        msf.total_weight(),
        offline,
        "incremental result must match offline Kruskal"
    );
    println!("verified: incremental == offline");
}
