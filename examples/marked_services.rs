//! Nearest-service lookup on a dynamic road tree (paper §3.8).
//!
//! Vertices are junctions; marked vertices host a service (say, charging
//! stations). Batch nearest-marked queries return the closest station and
//! distance for a fleet of vehicles; stations open/close via batch
//! mark/unmark, and roadworks re-route edges via batch cut/link.

use rc_parlay::rng::SplitMix64;
use rcforest::{NearestMarkedAgg, TernaryForest};

fn main() {
    let n = 50_000u32;
    let mut rng = SplitMix64::new(99);
    let mut map = TernaryForest::<NearestMarkedAgg>::new_nearest_marked(n as usize);

    // Random road tree with metric edge lengths.
    let roads: Vec<(u32, u32, u64)> = (1..n)
        .map(|v| (rng.next_below(v as u64) as u32, v, 1 + rng.next_below(500)))
        .collect();
    map.batch_link(&roads).expect("tree");

    // Open 50 stations.
    let stations: Vec<u32> = (0..50).map(|_| rng.next_below(n as u64) as u32).collect();
    map.batch_mark(&stations);

    // A fleet of 8 vehicles asks for the nearest station, in one batch.
    let fleet: Vec<u32> = (0..8).map(|_| rng.next_below(n as u64) as u32).collect();
    println!("nearest stations:");
    for (i, ans) in map.batch_nearest_marked(&fleet).iter().enumerate() {
        match ans {
            Some((d, s)) => println!(
                "  vehicle at {:>6}: station {s:>6} at distance {d}",
                fleet[i]
            ),
            None => println!("  vehicle at {:>6}: no station reachable", fleet[i]),
        }
    }

    // Close the two busiest stations, open two new ones.
    map.batch_unmark(&stations[0..2]);
    map.batch_mark(&[1234, 4321]);
    println!("\nafter rebalancing stations:");
    for (i, ans) in map.batch_nearest_marked(&fleet).iter().enumerate() {
        match ans {
            Some((d, s)) => println!(
                "  vehicle at {:>6}: station {s:>6} at distance {d}",
                fleet[i]
            ),
            None => println!("  vehicle at {:>6}: no station reachable", fleet[i]),
        }
    }
}
