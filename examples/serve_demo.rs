//! The request-coalescing service layer in action.
//!
//! Spins up an `rc-serve` coalescer over a generated forest, hammers it
//! from several client threads with mixed link/cut/query traffic, and
//! prints the epoch statistics: how many single-shot requests each epoch
//! coalesced into one batch, phase timings, and the end-to-end latency
//! percentiles.

use rcforest::serve::{RcServe, Request, Response, ServeConfig, ServeForest};
use rcforest::{BuildOptions, OpMix, RequestStream, RequestStreamConfig};
use std::time::{Duration, Instant};

fn main() {
    let threads = 4usize;
    let ops_per_thread = 5_000usize;
    let stream_cfg = RequestStreamConfig {
        forest: rcforest::ForestGenConfig {
            n: 50_000,
            seed: 42,
            ..Default::default()
        },
        mix: OpMix::balanced(),
        zipf_exponent: 0.8,
        ..Default::default()
    };

    let probe = RequestStream::new_partitioned(stream_cfg.clone(), 0, threads);
    let forest = ServeForest::build_edges(
        probe.num_vertices(),
        &probe.initial_edges(),
        BuildOptions::default(),
    )
    .expect("generated forest is valid");
    println!(
        "forest: n={}, {} edges; {threads} clients x {ops_per_thread} mixed ops",
        forest.num_vertices(),
        forest.num_edges(),
    );

    let server = RcServe::start(
        forest,
        ServeConfig {
            max_linger: Duration::from_micros(300),
            ..ServeConfig::default()
        },
    );

    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let client = server.client();
            let cfg = stream_cfg.clone();
            std::thread::spawn(move || {
                let mut stream = RequestStream::new_partitioned(cfg, t, threads);
                let mut errors = 0usize;
                let mut remaining = ops_per_thread;
                while remaining > 0 {
                    let chunk = remaining.min(64);
                    remaining -= chunk;
                    let handles: Vec<_> = (0..chunk)
                        .map(|_| client.submit(Request::from_stream(stream.next_op())))
                        .collect();
                    for h in handles {
                        if let Response::Updated(Err(_)) = h.wait() {
                            errors += 1;
                        }
                    }
                }
                errors
            })
        })
        .collect();
    let errors: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = t0.elapsed();

    let audit = server.client();
    let forest = server.shutdown();
    let stats = audit.stats();

    let total = threads * ops_per_thread;
    println!(
        "\nserved {total} requests in {:.1} ms  ({:.0} ops/sec), {errors} error responses",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "epochs: {} (mean batch {:.1}, max {}), update sub-batches: {}",
        stats.epochs, stats.mean_batch, stats.max_batch, stats.flushes,
    );
    println!(
        "latency: p50 {:.1} us, p95 {:.1} us, p99 {:.1} us (mean {:.1} us)",
        stats.latency.p50_ns as f64 / 1e3,
        stats.latency.p95_ns as f64 / 1e3,
        stats.latency.p99_ns as f64 / 1e3,
        stats.latency.mean_ns as f64 / 1e3,
    );

    println!("\nlast epochs (batch = coalesced requests):");
    println!("epoch    batch  updates  queries  flushes  update_ms  query_ms  version");
    for e in audit.epoch_history().iter().rev().take(10).rev() {
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>8} {:>10.3} {:>9.3} {:>8}",
            e.epoch,
            e.batch,
            e.updates,
            e.queries,
            e.flushes,
            e.update_ns as f64 / 1e6,
            e.query_ns as f64 / 1e6,
            e.version_after,
        );
    }
    println!(
        "\nfinal forest: {} edges, version {}",
        forest.num_edges(),
        forest.version()
    );
}
