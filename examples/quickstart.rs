//! Quickstart: build a dynamic forest, run batch updates, and exercise
//! every query family.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rcforest::{BuildOptions, RcForest, SumAgg, TernaryForest};

fn main() {
    // --- Degree-<=3 core forest: a weighted path 0-1-2-...-9 ----------
    let edges: Vec<(u32, u32, i64)> = (0..9).map(|i| (i, i + 1, (i + 1) as i64)).collect();
    let mut f = RcForest::<SumAgg<i64>>::build_edges(10, &edges, BuildOptions::default())
        .expect("valid forest");

    println!("path sum 0..9            = {:?}", f.path_aggregate(0, 9));
    println!(
        "subtree sum of 5 (from 4) = {:?}",
        f.subtree_aggregate(5, 4)
    );
    println!("lca(2, 7, root=4)        = {:?}", f.lca(2, 7, 4));

    // Batch updates: O(k log(1 + n/k)) expected work, not a rebuild.
    f.batch_cut(&[(4, 5)]).expect("edge exists");
    println!("after cut, connected(0,9) = {}", f.connected(0, 9));
    f.batch_link(&[(0, 9, 100)]).expect("no cycle");
    println!("path sum 4..5 (rerouted) = {:?}", f.path_aggregate(4, 5));

    // --- Arbitrary degree via ternarization ---------------------------
    let mut star = TernaryForest::<SumAgg<i64>>::new(8, 0);
    star.batch_link(&(1..8u32).map(|v| (0, v, v as i64)).collect::<Vec<_>>())
        .expect("stars are fine here");
    println!("degree of hub            = {}", star.degree(0));
    println!("path 3..7 through hub    = {:?}", star.path_aggregate(3, 7));

    // Batch queries amortize shared ancestors across the whole batch.
    let answers = star.batch_path_aggregate(&[(1, 2), (3, 4), (5, 6)]);
    println!("batch path sums          = {answers:?}");
}
