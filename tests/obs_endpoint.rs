//! Endpoint + tracing + watchdog oracle for the live observability
//! stack: a real `rc-serve` server under multi-threaded load answering
//! HTTP over TCP, per-request causal traces with contiguous spans that
//! account for the measured end-to-end latency, deterministic 1-in-N
//! sampling, the always-on slow-request capture, the epoch-stall
//! watchdog flipping `/ready`, and the rc-obs/rc-store frame codecs
//! pinned byte-for-byte.

use rcforest::serve::{
    Durability, ObsServerConfig, RcServe, Request, Response, ServeClient, ServeConfig, ServeForest,
    SyncPolicy,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Path forest 0-1-2-…-(n-1) with weight-1 edges.
fn path_server(n: usize, cfg: ServeConfig) -> RcServe {
    let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (v - 1, v, 1)).collect();
    let forest = ServeForest::build_edges(n, &edges, rcforest::BuildOptions::default())
        .expect("path forest is valid");
    RcServe::start(forest, cfg)
}

/// The request tape both sampling runs replay: edge-weight churn plus
/// the cheap query families, one submission sequence.
fn tape_request(i: usize, n: usize) -> Request {
    let v = (i % (n - 1)) as u32;
    match i % 4 {
        0 => Request::UpdateEdgeWeight {
            u: v,
            v: v + 1,
            w: i as u64,
        },
        1 => Request::Connected { u: 0, v },
        2 => Request::PathSum { u: v, v: v + 1 },
        _ => Request::Representative { v },
    }
}

/// Drive `threads` clients × `ops_per_thread` requests and wait for all.
fn drive(client: &ServeClient, n: usize, threads: usize, ops_per_thread: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let c = client.clone();
            s.spawn(move || {
                let mut handles = Vec::with_capacity(ops_per_thread);
                for i in 0..ops_per_thread {
                    handles.push(c.submit(tape_request(t * ops_per_thread + i, n)));
                }
                for h in handles {
                    assert_ne!(
                        h.wait(),
                        Response::Rejected,
                        "healthy server rejects nothing"
                    );
                }
            });
        }
    });
}

/// One blocking HTTP/1.0 GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(format!("GET {path} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("complete response");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Minimal Prometheus text-format check (mirrors `telemetry_smoke`):
/// headers parse, samples are integers, returns the metric names seen.
fn parse_prometheus(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line has a name");
            let kind = it.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown exposition kind {kind:?} in {line:?}"
            );
            names.push(name.to_string());
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample is `name value`");
        value.parse::<i128>().unwrap_or_else(|_| {
            panic!("sample value must be an integer, got {value:?} in {line:?}")
        });
    }
    names
}

#[test]
fn calibration_table_warm_starts_a_restarted_server() {
    let dir = std::env::temp_dir().join(format!("rc-costmodel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("costmodel.rccm");
    let n = 128;
    let cfg = ServeConfig {
        drain_threshold: 32,
        max_linger: Duration::from_micros(200),
        explore_frac: 0.5,
        calibration_path: Some(path.clone()),
        ..ServeConfig::default()
    };

    let server = path_server(n, cfg.clone());
    let client = server.client();
    drive(&client, n, 2, 200);
    let learned = client.cost_model_json();
    server.shutdown();
    assert!(
        learned.contains("\"ns_per_op\":"),
        "first run never populated the model: {learned}"
    );
    assert!(path.exists(), "clean shutdown saves the calibration table");

    // A fresh server pointed at the same path warm-starts: populated
    // cells are visible before it serves a single request.
    let server = path_server(n, cfg);
    let warm = server.client().cost_model_json();
    server.shutdown();
    assert!(
        warm.contains("\"ns_per_op\":"),
        "restarted model is cold despite the saved table: {warm}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn endpoint_answers_over_tcp_under_durable_load() {
    let dir = std::env::temp_dir().join(format!("rc-obs-endpoint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 256;
    let boot = {
        let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (v - 1, v, 1)).collect();
        rcforest::ForestState::from_edges(n, &edges)
    };
    let durability = Durability::new(&dir, n).sync_policy(SyncPolicy::Never);
    let cfg = ServeConfig {
        drain_threshold: 64,
        max_linger: Duration::from_micros(200),
        pipeline_depth: 1,
        ..ServeConfig::default()
    };
    let (server, _) = RcServe::start_durable(cfg, durability, Some(&boot)).expect("durable start");
    let obs = server
        .serve_obs(ObsServerConfig::default())
        .expect("bind endpoint");
    let addr = obs.local_addr();
    let client = server.client();

    // Scrape from a side thread while the load runs, so at least one GET
    // of every route lands mid-epoch rather than on an idle server.
    let scraper = std::thread::spawn(move || {
        let mut statuses = Vec::new();
        for _ in 0..3 {
            for path in [
                "/metrics",
                "/health",
                "/traces",
                "/flight",
                "/ready",
                "/costmodel",
            ] {
                statuses.push((path, http_get(addr, path).0));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        statuses
    });
    drive(&client, n, 4, 400);
    for (path, status) in scraper.join().expect("scraper thread") {
        assert!(status.contains("200"), "GET {path} answered {status:?}");
    }

    // Post-load scrapes assert on content.
    let (status, metrics) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let names = parse_prometheus(&metrics);
    for required in [
        "serve_epochs_total",
        "serve_requests_total",
        "serve_request_latency_ns",
        "serve_worker_heartbeat",
        "serve_executor_heartbeat",
        "serve_traces_sampled_total",
    ] {
        assert!(names.iter().any(|m| m == required), "missing {required}");
    }

    let (_, health) = http_get(addr, "/health");
    assert!(health.contains("\"healthy\":true"), "{health}");
    let (_, traces) = http_get(addr, "/traces");
    assert_eq!(traces.matches('{').count(), traces.matches('}').count());
    assert!(traces.contains("\"recent\":["), "{traces}");
    // 1600 requests through the default 1-in-64 sampler: the trace rings
    // and exemplars are populated with high probability (the sampled id
    // set for seed 0 over 1..=1600 is fixed, and non-empty).
    assert!(
        traces.contains("\"trace_id\":"),
        "no trace captured: {traces}"
    );
    let (_, flight) = http_get(addr, "/flight");
    assert!(flight.starts_with('[') && flight.contains("\"epoch\":"));
    // Queried epochs record which engine the dispatcher ran per family.
    assert!(flight.contains("\"engine\":\""), "{flight}");

    // The cost model learned from the load just served: the table has
    // populated cells and the decision counters moved.
    let (status, costmodel) = http_get(addr, "/costmodel");
    assert!(status.contains("200"), "{status}");
    assert_eq!(
        costmodel.matches('{').count(),
        costmodel.matches('}').count()
    );
    assert!(costmodel.contains("\"mode\":\"adaptive\""), "{costmodel}");
    assert!(costmodel.contains("\"ns_per_op\":"), "{costmodel}");
    assert!(costmodel.contains("\"crossover_k\":"), "{costmodel}");
    let decisions = costmodel
        .split("\"decisions\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("decision counter in /costmodel");
    assert!(decisions > 0, "{costmodel}");
    // The per-engine family series made it into the exposition too.
    assert!(
        names.iter().any(|m| m == "serve_dispatch_total"),
        "labeled dispatch counters missing: {names:?}"
    );
    assert!(
        metrics.contains("serve_family_query_ns{family=\"conn\",engine=\""),
        "labeled family histograms missing"
    );

    // Binary peer on the same port: one DUMP_TELEMETRY frame.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut req = Vec::new();
    rcforest::obs::frame::encode_frame(&mut req, rcforest::obs::DUMP_TELEMETRY_CMD);
    s.write_all(&req).unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let (payload, _) = rcforest::obs::frame::decode_frame(&resp, 0).expect("valid frame");
    let json = std::str::from_utf8(payload).unwrap();
    assert!(json.contains("\"metrics\":") && json.contains("\"flight\":"));

    drop(obs);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampled_trace_spans_are_causally_ordered_and_account_for_e2e() {
    let n = 256;
    // Capture everything: the span-structure invariants must hold for
    // every request, so check them on all of them.
    let server = path_server(
        n,
        ServeConfig {
            drain_threshold: 32,
            max_linger: Duration::from_micros(200),
            pipeline_depth: 1,
            trace_sample: 1,
            trace_ring: 2048,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    drive(&client, n, 2, 300);
    server.shutdown();

    let dump = client.request_traces();
    assert!(dump.sampled_total >= 600, "everything sampled: {dump:?}");
    let mut saw_deep_query = false;
    for t in &dump.recent {
        assert!(
            t.nspans >= 5,
            "update/query traces carry the epoch phases: {t:?}"
        );
        // Spans are laid end to end starting at submit: contiguous and
        // causally ordered.
        let mut cursor = 0u64;
        for s in t.spans() {
            assert_eq!(
                s.start_ns, cursor,
                "span {} starts where the previous ended in {t:?}",
                s.name
            );
            cursor += s.dur_ns;
        }
        assert_eq!(t.spans().first().unwrap().name, "queue");
        assert_eq!(t.spans().last().unwrap().name, "respond");
        // The spans partition the measured lifetime: the respond tail is
        // computed as the remainder, so the sum matches e2e exactly
        // unless racing phase timers overshoot by nanoseconds — far
        // inside the 10% acceptance bar either way.
        let (sum, e2e) = (t.span_sum_ns() as i128, t.e2e_ns as i128);
        assert!(
            (sum - e2e).abs() <= e2e / 10 + 10_000,
            "span sum {sum} ns vs e2e {e2e} ns in {t:?}"
        );
        if t.nspans >= 6 && t.spans().iter().any(|s| s.name.starts_with("query:")) {
            saw_deep_query = true;
        }
    }
    assert!(
        saw_deep_query,
        "some pipelined query trace carries >= 6 spans incl. its family span"
    );
    // Exemplars point the latency histogram's octaves back at trace ids.
    assert!(
        dump.exemplars
            .iter()
            .any(|e| e.metric == "serve_request_latency_ns" && e.trace_id > 0),
        "latency exemplars populated: {:?}",
        dump.exemplars
    );
}

#[test]
fn sampling_is_deterministic_and_near_one_in_n() {
    let n = 128;
    let ops = 400;
    let sample = 8u64;
    let run = || {
        let server = path_server(
            n,
            ServeConfig {
                trace_sample: sample,
                trace_seed: 7,
                trace_ring: 1024,
                slow_request_threshold: Duration::ZERO,
                ..ServeConfig::unbatched()
            },
        );
        let client = server.client();
        // Single-threaded sequential submission: request i gets global
        // sequence i, so trace ids are 1..=ops in tape order.
        for i in 0..ops {
            assert_ne!(client.call(tape_request(i, n)), Response::Rejected);
        }
        server.shutdown();
        let ids: Vec<u64> = client
            .request_traces()
            .recent
            .iter()
            .map(|t| t.trace_id)
            .collect();
        ids
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed + stream => identical sampled set");
    // And it matches the pure sampling function on the same ids.
    let expect: Vec<u64> = (1..=ops as u64)
        .filter(|&id| rcforest::obs::trace_sampled(7, id, sample))
        .collect();
    assert_eq!(first, expect, "captured set is exactly the 1-in-N decision");
    let target = ops as f64 / sample as f64;
    assert!(
        (first.len() as f64) > target * 0.5 && (first.len() as f64) < target * 2.0,
        "{} sampled of {ops}, expected about {target}",
        first.len()
    );
}

#[test]
fn slow_requests_are_captured_without_sampling() {
    // Sampling off entirely; the injected wedge delays epoch 1 past the
    // slow threshold, so its request must land in the slow ring anyway.
    let server = path_server(
        8,
        ServeConfig {
            trace_sample: 0,
            slow_request_threshold: Duration::from_millis(10),
            wedge_epochs: vec![1],
            wedge_for: Duration::from_millis(50),
            ..ServeConfig::unbatched()
        },
    );
    let client = server.client();
    assert_eq!(
        client.call(Request::UpdateEdgeWeight { u: 0, v: 1, w: 9 }),
        Response::Updated(Ok(()))
    );
    server.shutdown();
    let dump = client.request_traces();
    assert_eq!(dump.sampled_total, 0, "sampling disabled");
    assert!(dump.slow_total >= 1, "wedged request captured as slow");
    let t = dump
        .slow
        .first()
        .expect("slow ring holds the delayed request");
    assert!(t.slow && !t.sampled);
    assert!(
        t.e2e_ns >= 10_000_000,
        "captured trace shows the delay: {} ns",
        t.e2e_ns
    );
    assert_eq!(t.kind, "update_edge_weight");
}

#[test]
fn watchdog_flips_ready_on_injected_stall_and_recovers() {
    let server = path_server(
        8,
        ServeConfig {
            stall_deadline: Some(Duration::from_millis(100)),
            wedge_epochs: vec![1],
            wedge_for: Duration::from_millis(900),
            ..ServeConfig::unbatched()
        },
    );
    let obs = server
        .serve_obs(ObsServerConfig::default())
        .expect("bind endpoint");
    let addr = obs.local_addr();
    let client = server.client();

    let (status, _) = http_get(addr, "/ready");
    assert!(status.contains("200"), "ready before the stall: {status}");

    // The first epoch wedges for 900ms with a 100ms deadline: the
    // watchdog must flip /ready (and /health) to 503 while the request
    // is still in flight.
    let h = client.submit(Request::UpdateEdgeWeight { u: 0, v: 1, w: 1 });
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut flipped = false;
    while Instant::now() < deadline {
        let (status, body) = http_get(addr, "/ready");
        if status.contains("503") {
            assert!(body.contains("\"healthy\":false"), "{body}");
            assert!(
                body.contains("stalled in"),
                "detail names the phase: {body}"
            );
            flipped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        flipped,
        "watchdog never flipped /ready during a 900ms wedge"
    );
    let (status, _) = http_get(addr, "/health");
    assert!(status.contains("503"), "liveness flips too: {status}");

    // The wedge ends, the epoch commits, the response arrives, and the
    // next watchdog poll observes progress and re-arms.
    assert_eq!(h.wait(), Response::Updated(Ok(())));
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < deadline {
        let (status, _) = http_get(addr, "/ready");
        if status.contains("200") {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(recovered, "watchdog re-arms after the stall clears");

    // The postmortem froze the stalling phase and the stall counter.
    let report = client.stall_report().expect("stall postmortem frozen");
    assert_eq!(report.info.phase, "admit", "wedge sits in the admit phase");
    assert!(report.info.stalled_for >= Duration::from_millis(100));
    let view = client.health_view();
    assert!(view.healthy && view.ready, "healthy again after recovery");
    assert_eq!(view.stalls, 1, "exactly one stall episode declared");
    assert_eq!(
        client.metrics_snapshot().counter("serve_stalls_total"),
        Some(1)
    );
    drop(obs);
    server.shutdown();
}

#[test]
fn obs_frame_codec_is_byte_compatible_with_store_wal() {
    use rcforest::{obs, store};
    // Identical CRC function (IEEE 802.3).
    for payload in [&b""[..], b"123456789", b"DUMP_TELEMETRY", &[0xFF; 1024]] {
        assert_eq!(obs::frame::crc32(payload), store::frame::crc32(payload));
    }
    assert_eq!(obs::frame::crc32(b"123456789"), 0xCBF4_3926);
    // Frames encoded by either side decode on the other, byte for byte.
    let payload = b"telemetry over the wal wire discipline";
    let (mut a, mut b) = (Vec::new(), Vec::new());
    obs::frame::encode_frame(&mut a, payload);
    store::frame::encode_frame(&mut b, payload);
    assert_eq!(a, b, "identical wire bytes");
    let (p, consumed) = store::frame::decode_frame(&a, 0).expect("store decodes obs frame");
    assert_eq!((p, consumed), (&payload[..], a.len()));
    let (p, consumed) = obs::frame::decode_frame(&b, 0).expect("obs decodes store frame");
    assert_eq!((p, consumed), (&payload[..], b.len()));
}

#[test]
fn client_deadline_times_out_during_injected_wedge_but_the_update_still_lands() {
    let server = path_server(
        8,
        ServeConfig {
            wedge_epochs: vec![1],
            wedge_for: Duration::from_millis(400),
            ..ServeConfig::unbatched()
        },
    );
    let client = server.client();

    // Epoch 1 wedges for 400ms; a 30ms deadline must surface as
    // `TimedOut` long before the epoch commits.
    let t0 = Instant::now();
    let resp = client
        .with_deadline(Duration::from_millis(30))
        .submit(Request::UpdateEdgeWeight { u: 0, v: 1, w: 7 })
        .wait();
    assert_eq!(resp, Response::TimedOut, "deadline fires inside the wedge");
    assert!(
        t0.elapsed() < Duration::from_millis(350),
        "TimedOut returned before the wedge cleared ({:?})",
        t0.elapsed()
    );

    // The deadline bounds *waiting*, not execution: the wedged epoch
    // still commits the update, and a later (deadlined) read sees it.
    let resp = client
        .with_deadline(Duration::from_secs(10))
        .submit(Request::PathSum { u: 0, v: 1 })
        .wait();
    assert_eq!(
        resp,
        Response::Sum(Some(7)),
        "timed-out update committed anyway"
    );
    server.shutdown();
}

#[test]
fn watchdog_rearms_across_repeated_wedge_episodes() {
    // Epochs 1 and 3 wedge (unbatched: epoch ordinal == submission
    // ordinal). The watchdog must declare a stall, recover, and then
    // declare the *second* stall too — stall count strictly monotone,
    // /ready flipping 503 → 200 → 503 → 200.
    let server = path_server(
        8,
        ServeConfig {
            stall_deadline: Some(Duration::from_millis(80)),
            wedge_epochs: vec![1, 3],
            wedge_for: Duration::from_millis(700),
            ..ServeConfig::unbatched()
        },
    );
    let obs = server
        .serve_obs(ObsServerConfig::default())
        .expect("bind endpoint");
    let addr = obs.local_addr();
    let client = server.client();

    let wait_ready = |want_503: bool, what: &str| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (status, _) = http_get(addr, "/ready");
            if status.contains(if want_503 { "503" } else { "200" }) {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: last status {status}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // Episode one: epoch 1 wedges.
    let h = client.submit(Request::UpdateEdgeWeight { u: 0, v: 1, w: 1 });
    wait_ready(true, "first wedge never flipped /ready");
    assert_eq!(h.wait(), Response::Updated(Ok(())));
    wait_ready(false, "watchdog never re-armed after the first stall");
    assert_eq!(client.health_view().stalls, 1, "one episode declared");

    // Epoch 2 passes clean — progress between episodes.
    assert_eq!(
        client.submit(Request::Connected { u: 0, v: 1 }).wait(),
        Response::Bool(true)
    );

    // Episode two: epoch 3 wedges. The re-armed watchdog must catch it
    // as a *new* stall, not a continuation.
    let h = client.submit(Request::UpdateEdgeWeight { u: 1, v: 2, w: 2 });
    wait_ready(true, "second wedge never flipped /ready");
    assert_eq!(h.wait(), Response::Updated(Ok(())));
    wait_ready(false, "watchdog never re-armed after the second stall");

    let view = client.health_view();
    assert!(view.healthy && view.ready);
    assert_eq!(view.stalls, 2, "stall count is strictly monotone: 1 then 2");
    assert_eq!(
        client.metrics_snapshot().counter("serve_stalls_total"),
        Some(2)
    );
    drop(obs);
    server.shutdown();
}
