//! End-to-end incremental MSF vs offline Kruskal on generated streams.

use rcforest::parlay::rng::SplitMix64;
use rcforest::{kruskal, IncrementalMsf};

#[test]
fn incremental_equals_offline_on_dense_stream() {
    let n = 300usize;
    let mut rng = SplitMix64::new(11);
    let mut msf = IncrementalMsf::new(n);
    let mut all: Vec<(u32, u32, u64)> = Vec::new();
    for _ in 0..12 {
        let batch: Vec<(u32, u32, u64)> = (0..80)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                    1 + rng.next_below(1_000),
                )
            })
            .filter(|&(u, v, _)| u != v)
            .collect();
        all.extend(batch.iter().copied());
        msf.insert_batch(&batch);
        let offline: u64 = kruskal(n, &all).iter().map(|&i| all[i].2).sum();
        assert_eq!(msf.total_weight(), offline);
    }
    msf.forest().validate().unwrap();
    // The MSF edge set itself must be a spanning forest of minimum weight:
    // weight equality plus forest validity pins it down.
    assert!(msf.num_edges() < n);
}

#[test]
fn msf_stats_accounting() {
    let mut msf = IncrementalMsf::new(5);
    let s1 = msf.insert_batch(&[(0, 1, 10), (1, 2, 10), (3, 4, 10)]);
    assert_eq!(s1.inserted, 3);
    assert_eq!(s1.evicted, 0);
    let s2 = msf.insert_batch(&[(0, 2, 1)]); // evicts one of the 10s
    assert_eq!(s2.inserted, 1);
    assert_eq!(s2.evicted, 1);
    assert_eq!(msf.total_weight(), 21);
}
