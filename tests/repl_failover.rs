//! Fault-injected failover oracle for `rc-repl`.
//!
//! Every schedule wires a durable leader [`RcServe`] + [`ReplLeader`]
//! to a [`Follower`] through a seeded [`FaultProxy`] and perturbs the
//! replication stream: torn cuts at exact byte offsets, duplicated
//! frames, delayed (reordered) frames, a mid-stream leader kill with
//! follower promotion, and a follower restart mid-apply. The oracle
//! asserts, for ≥20 seeded schedules:
//!
//! - **Convergence** — the follower applies every committed epoch.
//! - **Read equivalence** — follower answers (Connected / PathSum /
//!   Bottleneck) equal a [`NaiveStdForest`] replay of the leader's
//!   commit log truncated at the version stamp the follower returned,
//!   both mid-stream (while records are still in flight) and at the end.
//! - **Durability across promotion** — every epoch the follower
//!   acknowledged survives into the [`Follower::promote`]d server.
//!
//! A separate test pins the bounded-staleness contract: the follower's
//! `/ready` returns 503 while its lag exceeds the bound or the leader is
//! gone, and 200 once caught up.

use rcforest::repl::{FaultPlan, FaultProxy, Follower, FollowerConfig, LeaderConfig, ReplLeader};
use rcforest::serve::{
    CommitEvent, Durability, ObsServerConfig, RcServe, Request, Response, ServeConfig, SyncPolicy,
};
use rcforest::store::EpochRecord;
use rcforest::{DynamicForest, ForestState, NaiveStdForest};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

const N: usize = 48;

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("rc-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Path 0-1-…-(N-1), varied weights.
fn boot_state() -> ForestState {
    let edges: Vec<(u32, u32, u64)> = (1..N as u32)
        .map(|v| (v - 1, v, (v as u64 % 7) + 1))
        .collect();
    ForestState::from_edges(N, &edges)
}

fn leader_cfg() -> ServeConfig {
    ServeConfig {
        drain_threshold: 8,
        max_linger: Duration::from_micros(100),
        ..ServeConfig::default()
    }
}

/// Seeded update tape: links, cuts, reweights, marks. Invalid ops are
/// fine — only what the leader *commits* enters the record stream, and
/// the oracle replays exactly that.
fn tape_update(seed: u64, i: u64) -> Request {
    let h = splitmix(seed.wrapping_mul(0x51ed).wrapping_add(i));
    let u = (h >> 8) as u32 % N as u32;
    let v = (h >> 24) as u32 % N as u32;
    let w = (h >> 40) % 100;
    match h % 6 {
        0 => Request::Link { u, v, w },
        1 => Request::Cut { u, v },
        2 => Request::UpdateEdgeWeight { u, v, w },
        3 => Request::UpdateVertexWeight { v, w },
        4 => Request::Mark { v },
        _ => Request::Unmark { v },
    }
}

/// Replay the committed records with epoch ≤ `stamp` onto a fresh naive
/// forest, in exactly the order the follower applies them.
fn naive_at(records: &[(u64, EpochRecord)], stamp: u64) -> NaiveStdForest {
    let mut nv = NaiveStdForest::with_max_degree(N, None);
    let boot = boot_state();
    nv.batch_link(&boot.edges)
        .expect("bootstrap edges are valid");
    for (epoch, rec) in records {
        if *epoch > stamp {
            continue;
        }
        for f in &rec.flushes {
            if !f.cuts.is_empty() {
                nv.batch_cut(&f.cuts).expect("committed cuts replay");
            }
            if !f.links.is_empty() {
                nv.batch_link(&f.links).expect("committed links replay");
            }
            for &(u, v, w) in &f.eweights {
                nv.set_edge_weight(u, v, w).expect("committed reweight");
            }
            for &(v, w, marked) in &f.vweights {
                nv.set_vertex_weight(v, w).expect("committed vweight");
                nv.set_mark(v, marked).expect("committed mark");
            }
        }
    }
    nv
}

/// The read set every check uses: seeded vertex pairs across three query
/// families.
fn read_requests(seed: u64) -> Vec<Request> {
    let mut reqs = Vec::new();
    for i in 0..16u64 {
        let h = splitmix(seed.wrapping_add(1000 + i));
        let u = (h >> 4) as u32 % N as u32;
        let v = (h >> 36) as u32 % N as u32;
        match i % 3 {
            0 => reqs.push(Request::Connected { u, v }),
            1 => reqs.push(Request::PathSum { u, v }),
            _ => reqs.push(Request::Bottleneck { u, v }),
        }
    }
    reqs
}

fn expected(nv: &mut NaiveStdForest, req: &Request) -> Response {
    match *req {
        Request::Connected { u, v } => Response::Bool(nv.connected(u, v)),
        Request::PathSum { u, v } => Response::Sum(nv.path_sum(u, v)),
        Request::Bottleneck { u, v } => Response::Extrema(nv.path_extrema(u, v)),
        _ => unreachable!("read set holds queries only"),
    }
}

/// Ask the follower, replay the oracle to the returned stamp, compare.
fn check_follower_reads(follower: &Follower, records: &[(u64, EpochRecord)], seed: u64, ctx: &str) {
    let reqs = read_requests(seed);
    let (stamp, responses) = follower.query(&reqs);
    assert!(
        records.iter().all(|(e, _)| *e != 0),
        "epoch 0 is the bootstrap, never a record"
    );
    let mut nv = naive_at(records, stamp);
    for (req, got) in reqs.iter().zip(&responses) {
        assert_eq!(
            got,
            &expected(&mut nv, req),
            "{ctx}: follower diverges from sequential replay at stamp {stamp} on {req:?}"
        );
    }
}

/// Drain everything currently buffered on the commit tap.
fn drain_tap(tap: &Receiver<CommitEvent>, into: &mut Vec<(u64, EpochRecord)>) {
    while let Ok(ev) = tap.try_recv() {
        into.push((ev.epoch, (*ev.record).clone()));
    }
}

/// Wait until the follower has applied every committed epoch. If the
/// stream stalls (a delayed frame can sit in the proxy until the next
/// frame pushes it out), nudge with one more real update.
fn converge(
    server: &RcServe,
    tap: &Receiver<CommitEvent>,
    records: &mut Vec<(u64, EpochRecord)>,
    follower: &Follower,
    seed: u64,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut nudge = 0u64;
    let mut last_progress = Instant::now();
    let mut last_applied = follower.applied();
    loop {
        drain_tap(tap, records);
        let target = records.last().map_or(0, |(e, _)| *e);
        let applied = follower.applied();
        if applied >= target {
            return;
        }
        if applied != last_applied {
            last_applied = applied;
            last_progress = Instant::now();
        }
        assert!(
            Instant::now() < deadline,
            "follower stuck at {applied}, target {target} (seed {seed})"
        );
        if last_progress.elapsed() > Duration::from_millis(500) {
            // Push a fresh frame through the stream to dislodge a held
            // one; toggling a reserved self-loop-free pair keeps it a
            // real state change (link if absent, cut if present).
            let (u, v) = (0u32, 1u32);
            let req = if nudge.is_multiple_of(2) {
                Request::Cut { u, v }
            } else {
                Request::Link { u, v, w: 1 }
            };
            nudge += 1;
            let _ = server.client().submit(req).wait();
            last_progress = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One full fault schedule; see the module docs for the five kinds.
fn run_schedule(seed: u64) {
    let h = splitmix(seed);
    let kind = seed % 5;
    let plan = match kind {
        0 => FaultPlan {
            cut_at: Some(64 + h % 4096),
            ..FaultPlan::default()
        },
        1 => FaultPlan {
            duplicate_frame: Some(h % 8),
            ..FaultPlan::default()
        },
        2 => FaultPlan {
            delay_frame: Some(h % 8),
            ..FaultPlan::default()
        },
        3 => FaultPlan {
            // Leader-kill schedule: also tear the stream first.
            cut_at: Some(256 + h % 2048),
            ..FaultPlan::default()
        },
        _ => FaultPlan::default(), // follower-restart schedule: clean stream
    };

    let ldir = dir(&format!("oracle-l{seed}"));
    let fdir = dir(&format!("oracle-f{seed}"));
    let boot = boot_state();
    let (server, _) = RcServe::start_durable(
        leader_cfg(),
        Durability::new(&ldir, N).sync_policy(SyncPolicy::PerEpoch),
        Some(&boot),
    )
    .expect("leader starts");
    let tap = server.subscribe_commits();
    let leader = ReplLeader::start(&server, LeaderConfig::new(&ldir, N)).expect("leader repl");
    let proxy = FaultProxy::start(leader.local_addr(), plan).expect("proxy starts");

    let mut fcfg = FollowerConfig::new(proxy.local_addr().to_string(), &fdir, N);
    fcfg.retry_base = Duration::from_millis(10);
    fcfg.retry_seed = seed;
    if kind >= 3 {
        // Make the apply loop slow enough that the kill/restart lands
        // mid-stream.
        fcfg.apply_delay = Duration::from_millis(1);
    }
    let mut follower = Follower::start(fcfg.clone()).expect("follower starts");

    let client = server.client();
    let mut records: Vec<(u64, EpochRecord)> = Vec::new();

    // First half of the load, then a mid-stream read-equivalence check
    // while records are still in flight.
    for chunk in 0..4u64 {
        let handles: Vec<_> = (0..30u64)
            .map(|i| client.submit(tape_update(seed, chunk * 30 + i)))
            .collect();
        for hnd in handles {
            let r = hnd.wait();
            assert!(
                matches!(r, Response::Updated(_)),
                "live server answered {r:?}"
            );
        }
        if chunk == 1 {
            // An unsynced replica (bootstrap snapshot still in flight —
            // a torn cut can delay it across reconnects) has no version
            // to answer at; wait for the basis, then compare.
            let deadline = Instant::now() + Duration::from_secs(30);
            while !follower.is_synced() {
                assert!(
                    Instant::now() < deadline,
                    "follower never acquired a basis (seed {seed})"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            drain_tap(&tap, &mut records);
            check_follower_reads(&follower, &records, seed, "mid-stream");
        }
    }

    match kind {
        3 => {
            // Mid-epoch leader kill → promote the follower. Everything it
            // acknowledged must survive into the promoted server.
            drain_tap(&tap, &mut records);
            proxy.stop();
            drop(leader);
            server.shutdown();
            drain_tap(&tap, &mut records);
            let deadline = Instant::now() + Duration::from_secs(10);
            while follower.is_connected() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            let acked = follower.applied();
            let (promoted, report) = follower
                .promote(leader_cfg())
                .expect("promotion recovers the replica");
            assert!(
                report.last_epoch >= acked,
                "acked epoch {acked} lost in promotion (recovered {})",
                report.last_epoch
            );
            // The promoted server's answers must equal the sequential
            // replay of everything the follower had applied.
            let reqs = read_requests(seed);
            let mut nv = naive_at(&records, report.last_epoch);
            let handles: Vec<_> = reqs
                .iter()
                .map(|r| promoted.client().submit(r.clone()))
                .collect();
            for (req, hnd) in reqs.iter().zip(handles) {
                assert_eq!(
                    hnd.wait(),
                    expected(&mut nv, req),
                    "promoted server diverges on {req:?} (seed {seed})"
                );
            }
            // And it is a real leader: it accepts new writes.
            let r = promoted
                .client()
                .submit(Request::UpdateVertexWeight { v: 0, w: 9 })
                .wait();
            assert_eq!(r, Response::Updated(Ok(())));
            promoted.shutdown();
            return;
        }
        4 => {
            // Follower restart mid-apply: tear it down while records are
            // still flowing, restart on the same directory, resume from
            // the locally durable epoch.
            let before = follower.applied();
            follower.stop();
            let restarted = Follower::start(fcfg).expect("follower restarts");
            assert!(
                restarted.applied() >= before.saturating_sub(0),
                "restart resumes from the durable epoch"
            );
            follower = restarted;
        }
        _ => {}
    }

    converge(&server, &tap, &mut records, &follower, seed);
    check_follower_reads(&follower, &records, seed, "converged");
    if kind == 1 || kind == 2 {
        assert!(proxy.plan_spent(), "fault plan fired (seed {seed})");
    }

    follower.stop();
    proxy.stop();
    drop(leader);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn failover_oracle_over_twenty_seeded_fault_schedules() {
    for seed in 0..25u64 {
        run_schedule(seed);
    }
}

#[test]
fn late_follower_catches_up_from_snapshot_after_compaction() {
    let ldir = dir("snapcatch-l");
    let fdir = dir("snapcatch-f");
    let boot = boot_state();
    // A tiny compaction threshold so the WAL prefix the follower would
    // have needed is compacted away before it ever connects.
    let (server, _) = RcServe::start_durable(
        leader_cfg(),
        Durability::new(&ldir, N)
            .sync_policy(SyncPolicy::PerEpoch)
            .compact_threshold(2048),
        Some(&boot),
    )
    .expect("leader starts");
    let tap = server.subscribe_commits();
    let client = server.client();
    let mut records = Vec::new();
    for i in 0..200u64 {
        let r = client.submit(tape_update(77, i)).wait();
        assert!(matches!(r, Response::Updated(_)));
    }
    drain_tap(&tap, &mut records);

    let leader = ReplLeader::start(&server, LeaderConfig::new(&ldir, N)).expect("leader repl");
    let follower = Follower::start(FollowerConfig::new(
        leader.local_addr().to_string(),
        &fdir,
        N,
    ))
    .expect("follower starts");
    converge(&server, &tap, &mut records, &follower, 77);
    check_follower_reads(&follower, &records, 77, "snapshot catch-up");
    assert_eq!(
        leader.metrics().counter("repl_leader_snapshots_sent_total"),
        Some(1),
        "catch-up went through a snapshot, not a full log replay"
    );
    assert!(
        follower
            .metrics()
            .counter("repl_follower_snapshot_installs_total")
            >= Some(1),
        "follower installed the shipped snapshot"
    );

    follower.stop();
    drop(leader);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// One blocking HTTP/1.0 GET; returns the status line.
fn http_status(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(format!("GET {path} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut buf = String::new();
    let _ = s.read_to_string(&mut buf);
    buf.lines().next().unwrap_or("").to_string()
}

#[test]
fn follower_ready_gates_on_the_staleness_bound() {
    let ldir = dir("stale-l");
    let fdir = dir("stale-f");
    let boot = boot_state();
    let (server, _) = RcServe::start_durable(
        leader_cfg(),
        Durability::new(&ldir, N).sync_policy(SyncPolicy::PerEpoch),
        Some(&boot),
    )
    .expect("leader starts");
    let leader = ReplLeader::start(&server, LeaderConfig::new(&ldir, N)).expect("leader repl");

    let mut fcfg =
        FollowerConfig::new(leader.local_addr().to_string(), &fdir, N).staleness_bound(0);
    // Slow the apply loop so lag is observable from the outside.
    fcfg.apply_delay = Duration::from_millis(15);
    fcfg.retry_base = Duration::from_millis(10);
    let follower = Follower::start(fcfg).expect("follower starts");
    let obs = follower
        .serve_obs(ObsServerConfig::default())
        .expect("follower obs endpoint");
    let addr = obs.local_addr();

    // Connected and caught up (nothing committed yet): ready.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http_status(addr, "/ready").contains("200") {
            break;
        }
        assert!(Instant::now() < deadline, "follower never became ready");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A burst of commits with a 15ms-per-record apply delay: lag exceeds
    // the bound of 0 and /ready must flip to 503 while catching up.
    let client = server.client();
    let handles: Vec<_> = (0..30u64)
        .map(|i| client.submit(tape_update(5, i)))
        .collect();
    let mut saw_unready = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if http_status(addr, "/ready").contains("503") {
            saw_unready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for h in handles {
        assert!(matches!(h.wait(), Response::Updated(_)));
    }
    assert!(saw_unready, "/ready never reported the staleness excursion");

    // Caught up again: ready returns.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if follower.lag() == 0 && http_status(addr, "/ready").contains("200") {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught back up");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Leader gone: a follower that cannot see the leader is not ready,
    // however small its lag.
    drop(leader);
    server.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http_status(addr, "/ready").contains("503") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "/ready stayed 200 without a leader"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    drop(obs);
    follower.stop();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}
