//! Crash-injection differential harness for the durability layer.
//!
//! A durable [`RcServe`] serves seeded multi-client traffic with its
//! commit log recorded. Afterwards the WAL is **truncated at arbitrary
//! byte offsets** (file header, frame headers, mid-payload, clean
//! boundaries — [`rcforest::truncation_offsets`]), a fresh [`Store`]
//! recovers from each mutilated copy, and the recovered forest must agree
//! **exactly** with a [`NaiveStdForest`] oracle that replayed only the
//! acknowledged prefix — the committed updates of the epochs that
//! survived truncation. Agreement is checked two ways:
//!
//! * structurally — canonical [`DynamicForest::export_state`] equality,
//!   which covers every edge, weight and mark at once;
//! * behaviorally — a killed-and-recovered server answers a probe battery
//!   across all seven query families identically to the oracle.
//!
//! Frame atomicity is what makes "acknowledged prefix" well-defined: a
//! cut inside an epoch's frame drops that epoch *whole*, so recovery
//! never observes half an epoch.

use rcforest::serve::{Durability, LogEntry, RcServe, Request, Response, ServeConfig};
use rcforest::store::{Store, StoreConfig};
use rcforest::{
    truncation_offsets, DynamicForest, ForestGenConfig, ForestState, NaiveStdForest, OpMix,
    RequestStream, RequestStreamConfig,
};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAX_DEGREE: usize = 3;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rc-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Copy a store directory (snapshots + WAL), truncating the WAL to `cut`.
fn copy_store_truncated(src: &Path, dst: &Path, cut: u64) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name == rcforest::store::WAL_FILE {
            let raw = std::fs::read(entry.path()).unwrap();
            let keep = (cut as usize).min(raw.len());
            std::fs::write(dst.join(name), &raw[..keep]).unwrap();
        } else {
            std::fs::copy(entry.path(), dst.join(name)).unwrap();
        }
    }
}

/// Replay the acknowledged update prefix (committed epochs ≤ `last_epoch`)
/// into a fresh oracle over the bootstrap edges.
fn oracle_at_epoch(
    n: usize,
    initial: &[(u32, u32, u64)],
    log: &[LogEntry],
    last_epoch: u64,
) -> NaiveStdForest {
    let mut nv = NaiveStdForest::with_max_degree(n, Some(MAX_DEGREE));
    nv.batch_link(initial).expect("valid initial forest");
    for entry in log {
        if entry.epoch > last_epoch || !entry.request.is_update() {
            continue;
        }
        if entry.response != Response::Updated(Ok(())) {
            continue; // rejected updates never mutated state
        }
        let r = match entry.request {
            Request::Link { u, v, w } => nv.link(u, v, w),
            Request::Cut { u, v } => nv.cut(u, v),
            Request::UpdateEdgeWeight { u, v, w } => nv.set_edge_weight(u, v, w),
            Request::UpdateVertexWeight { v, w } => nv.set_vertex_weight(v, w),
            Request::Mark { v } => nv.set_mark(v, true),
            Request::Unmark { v } => nv.set_mark(v, false),
            _ => unreachable!("queries filtered above"),
        };
        assert_eq!(
            r,
            Ok(()),
            "acknowledged update must replay cleanly: epoch {} seq {} {:?}",
            entry.epoch,
            entry.seq,
            entry.request
        );
    }
    nv
}

/// Drive a recovered server through every query family and demand exact
/// agreement with the oracle (representatives structurally).
fn probe_all_families(server: &RcServe, oracle: &mut NaiveStdForest, n: u32, tag: &str) {
    let c = server.client();
    for i in 0..48u32 {
        let u = (i * 31 + 1) % n;
        let v = (i * 17 + 5) % n;
        let r = (i * 7 + 2) % n;
        assert_eq!(
            c.call(Request::Connected { u, v }),
            Response::Bool(oracle.connected(u, v)),
            "{tag}: connected({u},{v})"
        );
        assert_eq!(
            c.call(Request::PathSum { u, v }),
            Response::Sum(oracle.path_sum(u, v)),
            "{tag}: path_sum({u},{v})"
        );
        assert_eq!(
            c.call(Request::Bottleneck { u, v }),
            Response::Extrema(oracle.path_extrema(u, v)),
            "{tag}: bottleneck({u},{v})"
        );
        assert_eq!(
            c.call(Request::Lca { u, v, r }),
            Response::Vertex(oracle.lca(u, v, r)),
            "{tag}: lca({u},{v},{r})"
        );
        assert_eq!(
            c.call(Request::SubtreeSum { v: u, parent: v }),
            Response::Sum(oracle.subtree_sum(u, v)),
            "{tag}: subtree({u},{v})"
        );
        // Nearest-marked distances must match (witnesses only differ on
        // ties, which the mark/weight churn can produce).
        let near = c.call(Request::NearestMarked { v: u });
        let want = oracle.nearest_marked(u);
        match near {
            Response::Near(got) => assert_eq!(
                got.map(|x| x.0),
                want.map(|x| x.0),
                "{tag}: nearest_marked({u})"
            ),
            other => panic!("{tag}: wrong response kind {other:?}"),
        }
        // Representatives are compared structurally: in range ⇔ present,
        // and the id must lie in the probe's own component.
        match c.call(Request::Representative { v: u }) {
            Response::Vertex(Some(rep)) => {
                assert!(oracle.connected(u, rep), "{tag}: repr({u}) = {rep} foreign")
            }
            Response::Vertex(None) => panic!("{tag}: repr({u}) absent for in-range id"),
            other => panic!("{tag}: wrong response kind {other:?}"),
        }
    }
}

struct Scenario {
    tag: &'static str,
    seed: u64,
    threads: usize,
    ops_per_thread: usize,
    mix: OpMix,
    /// WAL compaction threshold — small values force snapshots mid-run,
    /// so truncation also exercises the snapshot + short-suffix path.
    compact_bytes: u64,
    /// Truncation points tried (beyond the deterministic boundary set).
    random_cuts: usize,
    /// Run the full seven-family probe battery on every k-th cut.
    probe_every: usize,
}

/// The harness: serve → kill (truncate) → recover → differential check.
/// Returns the total number of seeded ops served.
fn run_crash_scenario(sc: &Scenario) -> usize {
    let n = 1_500usize;
    let stream_cfg = RequestStreamConfig {
        forest: ForestGenConfig {
            n,
            seed: sc.seed,
            max_weight: 64,
            ..Default::default()
        },
        mix: sc.mix,
        invalid_frac: 0.04,
        ..Default::default()
    };
    let probe = RequestStream::new_partitioned(stream_cfg.clone(), 0, sc.threads);
    let initial = probe.initial_edges();
    let boot = ForestState::from_edges(n, &initial);

    // ---- serve the seeded traffic durably, recording the commit log ----
    let dir = fresh_dir(sc.tag);
    let (server, report) = RcServe::start_durable(
        ServeConfig {
            max_linger: Duration::from_micros(200),
            record_commit_log: true,
            ..ServeConfig::default()
        },
        Durability::new(&dir, n).compact_threshold(sc.compact_bytes),
        Some(&boot),
    )
    .expect("fresh durable store");
    assert_eq!(report.replayed_epochs, 0);
    let threads = sc.threads;
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let client = server.client();
            let cfg = stream_cfg.clone();
            let ops = sc.ops_per_thread;
            std::thread::spawn(move || {
                let mut stream = RequestStream::new_partitioned(cfg, t, threads);
                let mut remaining = ops;
                while remaining > 0 {
                    let chunk = remaining.min(32);
                    remaining -= chunk;
                    let handles: Vec<_> = (0..chunk)
                        .map(|_| client.submit(Request::from_stream(stream.next_op())))
                        .collect();
                    for h in handles {
                        assert!(h.wait() != Response::Rejected);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let auditor = server.client();
    server.shutdown();
    let log = auditor.take_commit_log();
    let total_ops = sc.threads * sc.ops_per_thread;
    assert_eq!(log.len(), total_ops, "every request committed exactly once");

    // ---- crash injection: truncate, recover, differentially verify ----
    let wal_path = dir.join(rcforest::store::WAL_FILE);
    let wal_len = std::fs::metadata(&wal_path).unwrap().len();
    let cuts = truncation_offsets(wal_len, 16, sc.random_cuts, sc.seed);
    assert!(cuts.len() >= sc.random_cuts / 2 + 4);
    let mut distinct_epochs = HashSet::new();
    let crash_dir = fresh_dir(&format!("{}-cut", sc.tag));
    for (i, &cut) in cuts.iter().enumerate() {
        copy_store_truncated(&dir, &crash_dir, cut);
        let recovered = Store::open(StoreConfig::new(&crash_dir, n))
            .unwrap_or_else(|e| panic!("{}: cut {cut}: recovery failed: {e}", sc.tag));
        let last_epoch = recovered.report.last_epoch;
        distinct_epochs.insert(last_epoch);
        let mut oracle = oracle_at_epoch(n, &initial, &log, last_epoch);
        assert_eq!(
            recovered.forest.export_state(),
            oracle.export_state(),
            "{}: cut {cut} (epoch {last_epoch}): recovered state diverges \
             from the acknowledged prefix",
            sc.tag
        );
        drop(recovered);
        if i % sc.probe_every == 0 {
            // Behavioral check: kill-and-recover a full server on the
            // truncated store and compare all seven families live.
            let (server, rep) = RcServe::start_durable(
                ServeConfig::default(),
                Durability::new(&crash_dir, n),
                None,
            )
            .expect("recovered server");
            assert_eq!(rep.last_epoch, last_epoch, "{}: cut {cut}", sc.tag);
            probe_all_families(&server, &mut oracle, n as u32, sc.tag);
            server.shutdown();
        }
    }
    assert!(
        distinct_epochs.len() > 3,
        "{}: cuts must land in several epochs, got {:?}",
        sc.tag,
        distinct_epochs
    );
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(crash_dir);
    total_ops
}

/// The pipelined durability-ordering test: queries of epoch E release
/// concurrently with epoch E+1's WAL append, so an injected append
/// failure mid-run must still leave a well-defined acknowledged prefix —
/// every handle resolves (served or rejected, never hung), recovery
/// reproduces exactly the logged updates, and no released query ever
/// observed state beyond the durable prefix (its MVCC stamp proves it).
#[test]
fn pipelined_wal_failure_preserves_acknowledged_prefix_under_overlap() {
    let n = 600usize;
    let threads = 6usize;
    let ops_per_thread = 400usize;
    let stream_cfg = RequestStreamConfig {
        forest: ForestGenConfig {
            n,
            seed: 0xC4A5_0003,
            max_weight: 64,
            ..Default::default()
        },
        mix: OpMix::balanced(),
        invalid_frac: 0.04,
        ..Default::default()
    };
    let probe = RequestStream::new_partitioned(stream_cfg.clone(), 0, threads);
    let initial = probe.initial_edges();
    let boot = ForestState::from_edges(n, &initial);
    let dir = fresh_dir("pipelined-wal-fail");
    let mut durability = Durability::new(&dir, n);
    // Fail the WAL mid-run: the first 12 state-changing epochs append
    // durably, the 13th append errors — while earlier epochs' query
    // phases may still be releasing responses on the executor thread.
    durability.fail_appends_after = 12;
    let (server, report) = RcServe::start_durable(
        ServeConfig {
            max_linger: Duration::from_micros(100),
            drain_threshold: 64,
            max_epoch_ops: 128,
            pipeline_depth: 2,
            record_commit_log: true,
            ..ServeConfig::default()
        },
        durability,
        Some(&boot),
    )
    .expect("fresh durable store");
    assert_eq!(report.replayed_epochs, 0);
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let client = server.client();
            let cfg = stream_cfg.clone();
            std::thread::spawn(move || {
                let mut stream = RequestStream::new_partitioned(cfg, t, threads);
                let mut rejected = 0usize;
                let mut remaining = ops_per_thread;
                while remaining > 0 {
                    let chunk = remaining.min(16);
                    remaining -= chunk;
                    let handles: Vec<_> = (0..chunk)
                        .map(|_| client.submit(Request::from_stream(stream.next_op())))
                        .collect();
                    for h in handles {
                        match h.wait_timeout(Duration::from_secs(60)) {
                            Some(Response::Rejected) => rejected += 1,
                            Some(_) => {}
                            None => panic!("request hung across the WAL failure"),
                        }
                    }
                }
                rejected
            })
        })
        .collect();
    let rejected: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(
        rejected > 0,
        "the injected WAL failure must reject requests"
    );
    let auditor = server.client();
    server.shutdown();
    let log = auditor.take_commit_log();
    assert_eq!(
        log.len() + rejected,
        threads * ops_per_thread,
        "every request either committed (and logged) or rejected"
    );
    assert!(!log.is_empty(), "some epochs committed before the failure");

    // Recovery reproduces exactly the acknowledged prefix: the full set
    // of logged (acknowledged) updates, nothing more, nothing less.
    let recovered =
        Store::open(StoreConfig::new(&dir, n)).expect("recovery after injected failure");
    let last = recovered.report.last_epoch;
    let oracle = oracle_at_epoch(n, &initial, &log, u64::MAX);
    assert_eq!(
        recovered.forest.export_state(),
        oracle.export_state(),
        "recovered state diverges from the acknowledged prefix"
    );
    // Overlapped release never outran durability: every query's MVCC
    // stamp lies within the durable prefix.
    for e in log.iter().filter(|e| !e.request.is_update()) {
        assert!(
            e.version <= last,
            "query (epoch {} seq {}) stamped {} — past the durable prefix {last}",
            e.epoch,
            e.seq,
            e.version
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// Acceptance test: ≥100k seeded ops across crash scenarios in release
/// (reduced in debug so plain `cargo test` stays quick; CI runs the
/// release version explicitly).
#[test]
fn crash_truncation_recovers_exact_acknowledged_prefix() {
    let (ops_per_thread, random_cuts) = if cfg!(debug_assertions) {
        (250, 12)
    } else {
        (6_500, 28)
    };
    let mut total = 0usize;
    total += run_crash_scenario(&Scenario {
        tag: "balanced",
        seed: 0xC4A5_0001,
        threads: 8,
        ops_per_thread,
        mix: OpMix::balanced(),
        compact_bytes: u64::MAX,
        random_cuts,
        probe_every: 6,
    });
    total += run_crash_scenario(&Scenario {
        tag: "update-heavy-compacting",
        seed: 0xC4A5_0002,
        threads: 8,
        ops_per_thread,
        mix: OpMix::update_heavy(),
        // Small threshold: snapshots + WAL truncation happen mid-run, so
        // cuts exercise the snapshot + short-suffix recovery path.
        compact_bytes: 16 << 10,
        random_cuts,
        probe_every: 6,
    });
    if !cfg!(debug_assertions) {
        assert!(total >= 100_000, "acceptance floor: {total} ops");
    }
}
