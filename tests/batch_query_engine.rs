//! Engine-routed batch queries vs the naive oracle.
//!
//! Seeded property tests: random degree-≤3 forests evolve through rounds
//! of interleaved batch cuts and links; after every round, each batch
//! query family that routes through the marked-subtree engine
//! (connectivity, subtree, path sums, LCA, compressed path trees,
//! bottleneck, nearest-marked) is checked against `rcforest::naive`.
//! Query batches deliberately mix valid, duplicate, self-pair and
//! out-of-range entries to pin the uniform `None` contract.

use rcforest::naive::NaiveForest;
use rcforest::parlay::rng::SplitMix64;
use rcforest::{BuildOptions, MaxEdgeAgg, NearestMarkedAgg, RcForest, SumAgg, UnitAgg, NO_VERTEX};

/// Mirrored forests: one naive oracle + one RC forest per aggregate.
struct Mirror {
    n: usize,
    naive: NaiveForest<u64>,
    sum: RcForest<SumAgg<i64>>,
    unit: RcForest<UnitAgg>,
    max: RcForest<MaxEdgeAgg<u64>>,
    near: RcForest<NearestMarkedAgg>,
    marked: Vec<bool>,
}

impl Mirror {
    fn new(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut naive = NaiveForest::<u64>::new(n);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 1..n as u32 {
            if rng.next_f64() < 0.08 {
                continue; // leave some disconnection
            }
            let u = if rng.next_f64() < 0.6 {
                v - 1
            } else {
                rng.next_below(v as u64) as u32
            };
            let w = 1 + rng.next_below(50);
            if naive.degree(u) < 3 && naive.link(u, v, w).is_ok() {
                edges.push((u, v, w));
            }
        }
        let opts = BuildOptions::default();
        let sum_edges: Vec<(u32, u32, i64)> =
            edges.iter().map(|&(u, v, w)| (u, v, w as i64)).collect();
        let unit_edges: Vec<(u32, u32, ())> = edges.iter().map(|&(u, v, _)| (u, v, ())).collect();
        Mirror {
            n,
            sum: RcForest::build_edges(n, &sum_edges, opts).unwrap(),
            unit: RcForest::build_edges(n, &unit_edges, opts).unwrap(),
            max: RcForest::build_edges(n, &edges, opts).unwrap(),
            near: RcForest::build_edges(n, &edges, opts).unwrap(),
            naive,
            marked: vec![false; n],
        }
    }

    /// One random batch of cuts + links applied everywhere.
    fn mutate(&mut self, rng: &mut SplitMix64) {
        let n = self.n;
        let mut cuts: Vec<(u32, u32)> = Vec::new();
        let mut links: Vec<(u32, u32, u64)> = Vec::new();
        for _ in 0..10 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            if u == v {
                continue;
            }
            if self.naive.edge_weight(u, v).is_some()
                && !cuts.contains(&(u, v))
                && !cuts.contains(&(v, u))
            {
                cuts.push((u, v));
            }
        }
        for &(u, v) in &cuts {
            self.naive.cut(u, v).unwrap();
        }
        for _ in 0..10 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            let w = 1 + rng.next_below(50);
            if u != v
                && self.naive.degree(u) < 3
                && self.naive.degree(v) < 3
                && self.naive.link(u, v, w).is_ok()
            {
                links.push((u, v, w));
            }
        }
        let sum_links: Vec<(u32, u32, i64)> =
            links.iter().map(|&(u, v, w)| (u, v, w as i64)).collect();
        let unit_links: Vec<(u32, u32, ())> = links.iter().map(|&(u, v, _)| (u, v, ())).collect();
        self.sum.batch_cut(&cuts).unwrap();
        self.sum.batch_link(&sum_links).unwrap();
        self.unit.batch_cut(&cuts).unwrap();
        self.unit.batch_link(&unit_links).unwrap();
        self.max.batch_cut(&cuts).unwrap();
        self.max.batch_link(&links).unwrap();
        self.near.batch_cut(&cuts).unwrap();
        self.near.batch_link(&links).unwrap();
    }

    /// Random vertex, ~10% of the time out of range.
    fn vertex(&self, rng: &mut SplitMix64) -> u32 {
        if rng.next_f64() < 0.1 {
            self.n as u32 + rng.next_below(10) as u32
        } else {
            rng.next_below(self.n as u64) as u32
        }
    }

    fn check_connectivity(&self, rng: &mut SplitMix64) {
        let pairs: Vec<(u32, u32)> = (0..80)
            .map(|_| (self.vertex(rng), self.vertex(rng)))
            .collect();
        let got = self.sum.batch_connected(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = (u as usize) < self.n && (v as usize) < self.n && self.naive.connected(u, v);
            assert_eq!(got[i], want, "connected ({u},{v})");
        }
        let reprs = self
            .sum
            .batch_find_representatives(&pairs.iter().map(|&(u, _)| u).collect::<Vec<_>>());
        for (i, &(u, _)) in pairs.iter().enumerate() {
            assert_eq!(
                reprs[i] == NO_VERTEX,
                u as usize >= self.n,
                "repr range ({u})"
            );
        }
    }

    fn check_path_sums(&self, rng: &mut SplitMix64) {
        let pairs: Vec<(u32, u32)> = (0..80)
            .map(|_| (self.vertex(rng), self.vertex(rng)))
            .collect();
        let got = self.sum.batch_path_aggregate(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = if (u as usize) < self.n && (v as usize) < self.n {
                self.naive
                    .path_edges(u, v)
                    .map(|es| es.iter().map(|&w| w as i64).sum::<i64>())
            } else {
                None
            };
            assert_eq!(got[i], want, "path sum ({u},{v})");
        }
    }

    fn check_subtree(&self, rng: &mut SplitMix64) {
        // Mostly adjacent pairs, with invalid entries sprinkled in.
        let mut queries: Vec<(u32, u32)> = Vec::new();
        for _ in 0..60 {
            let u = rng.next_below(self.n as u64) as u32;
            let nbrs: Vec<u32> = self.naive.neighbors(u).collect();
            if !nbrs.is_empty() && rng.next_f64() < 0.8 {
                queries.push((u, nbrs[rng.next_below(nbrs.len() as u64) as usize]));
            } else {
                queries.push((u, self.vertex(rng))); // possibly non-adjacent / OOR
            }
        }
        queries.push((0, 0)); // self-pair: never adjacent
        let got = self.sum.batch_subtree_aggregate(&queries);
        for (i, &(u, p)) in queries.iter().enumerate() {
            let adjacent = (u as usize) < self.n
                && (p as usize) < self.n
                && self.naive.edge_weight(u, p).is_some();
            if !adjacent {
                assert_eq!(got[i], None, "subtree ({u},{p}) should be None");
                continue;
            }
            let (_, es) = self.naive.subtree(u, p);
            let want: i64 = es.iter().map(|&w| w as i64).sum();
            assert_eq!(got[i], Some(want), "subtree ({u},{p})");
        }
    }

    fn check_lca(&self, rng: &mut SplitMix64) {
        let triples: Vec<(u32, u32, u32)> = (0..60)
            .map(|_| (self.vertex(rng), self.vertex(rng), self.vertex(rng)))
            .collect();
        let got = self.unit.batch_lca(&triples);
        for (i, &(u, v, r)) in triples.iter().enumerate() {
            let want = if [u, v, r].iter().all(|&x| (x as usize) < self.n) {
                self.naive.lca(u, v, r)
            } else {
                None
            };
            assert_eq!(got[i], want, "lca ({u},{v},{r})");
        }
    }

    fn check_bottleneck(&self, rng: &mut SplitMix64) {
        let pairs: Vec<(u32, u32)> = (0..60)
            .map(|_| (self.vertex(rng), self.vertex(rng)))
            .collect();
        let got = self.max.batch_path_extrema(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = if (u as usize) < self.n && (v as usize) < self.n {
                self.naive.path_edges(u, v)
            } else {
                None
            };
            match (&got[i], want) {
                (None, None) => {}
                (Some(opt), Some(es)) => {
                    assert_eq!(
                        opt.map(|e| e.w),
                        es.iter().copied().max(),
                        "bottleneck ({u},{v})"
                    );
                }
                (g, w) => panic!("bottleneck ({u},{v}): {g:?} vs {w:?}"),
            }
        }
    }

    fn check_cpt(&self, rng: &mut SplitMix64) {
        let terms: Vec<u32> = (0..10).map(|_| self.vertex(rng)).collect();
        let cpt = self.max.compressed_path_tree(&terms);
        let in_range: Vec<u32> = terms
            .iter()
            .copied()
            .filter(|&t| (t as usize) < self.n)
            .collect();
        for &a in &in_range {
            for &b in &in_range {
                if a == b {
                    continue;
                }
                let want = self.naive.path_edges(a, b);
                match (cpt.path_value(a, b), want) {
                    (None, None) => {}
                    (Some(opt), Some(es)) => {
                        assert_eq!(opt.map(|e| e.w), es.iter().copied().max(), "cpt ({a},{b})");
                    }
                    (g, w) => panic!("cpt ({a},{b}): {g:?} vs {w:?}"),
                }
            }
        }
    }

    fn check_nearest_marked(&mut self, rng: &mut SplitMix64) {
        // Re-randomize the mark set, then query.
        let unmark: Vec<u32> = (0..self.n as u32)
            .filter(|&v| self.marked[v as usize])
            .collect();
        self.near.batch_unmark(&unmark).unwrap();
        self.marked.fill(false);
        let marks: Vec<u32> = (0..8)
            .map(|_| rng.next_below(self.n as u64) as u32)
            .collect();
        for &m in &marks {
            self.marked[m as usize] = true;
        }
        self.near.batch_mark(&marks).unwrap();
        let queries: Vec<u32> = (0..60).map(|_| self.vertex(rng)).collect();
        let got = self.near.batch_nearest_marked(&queries);
        for (i, &q) in queries.iter().enumerate() {
            let want = if (q as usize) < self.n {
                self.naive.nearest_marked(q, &self.marked)
            } else {
                None
            };
            // Distances must agree; witnesses may differ only on ties.
            assert_eq!(
                got[i].map(|x| x.0),
                want.map(|x| x.0),
                "nearest ({q}): {:?} vs {:?}",
                got[i],
                want
            );
        }
    }
}

#[test]
fn all_engine_queries_match_oracle_under_interleaved_updates() {
    for seed in [7u64, 1234, 998877] {
        let mut mirror = Mirror::new(250, seed);
        let mut rng = SplitMix64::new(seed ^ 0xDEAD);
        for round in 0..6 {
            mirror.mutate(&mut rng);
            mirror
                .sum
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
            mirror.check_connectivity(&mut rng);
            mirror.check_path_sums(&mut rng);
            mirror.check_subtree(&mut rng);
            mirror.check_lca(&mut rng);
            mirror.check_bottleneck(&mut rng);
            mirror.check_cpt(&mut rng);
            mirror.check_nearest_marked(&mut rng);
        }
    }
}

#[test]
fn duplicate_and_self_entries_are_answered_independently() {
    let edges: Vec<(u32, u32, i64)> = (0..9).map(|i| (i, i + 1, (i + 1) as i64)).collect();
    let f = RcForest::<SumAgg<i64>>::build_edges(10, &edges, BuildOptions::default()).unwrap();
    // Duplicates answer identically; self-pairs answer the identity.
    let got = f.batch_path_aggregate(&[(0, 9), (0, 9), (4, 4), (0, 9)]);
    assert_eq!(got, vec![Some(45), Some(45), Some(0), Some(45)]);
    let conn = f.batch_connected(&[(3, 3), (3, 3), (3, 12)]);
    assert_eq!(conn, vec![true, true, false]);
    let lcas = f.batch_lca(&[(2, 2, 5), (2, 2, 5), (2, 5, 2)]);
    assert_eq!(lcas, vec![Some(2), Some(2), Some(2)]);
}

#[test]
fn empty_batches_everywhere() {
    let f = RcForest::<SumAgg<i64>>::new(5);
    assert!(f.batch_connected(&[]).is_empty());
    assert!(f.batch_path_aggregate(&[]).is_empty());
    assert!(f.batch_subtree_aggregate(&[]).is_empty());
    assert!(f.batch_lca(&[]).is_empty());
    assert!(f.batch_find_representatives(&[]).is_empty());
    // All-out-of-range batches: all None, no panic.
    assert_eq!(f.batch_path_aggregate(&[(9, 9)]), vec![None]);
    assert_eq!(f.batch_lca(&[(9, 9, 9)]), vec![None]);
    assert_eq!(f.batch_connected(&[(9, 9)]), vec![false]);
}
