//! Observability smoke oracle for the `rc-obs` + `rc-serve` telemetry
//! path: drives a pipelined server under multi-threaded load, then
//! checks that
//!
//! 1. `Request::DumpTelemetry` round-trips a consistent dump through the
//!    normal request path,
//! 2. the Prometheus text exposition and JSON export parse and contain
//!    the serve metric families,
//! 3. the flight recorder's phase breakdown accounts for (almost) all of
//!    recorded epoch wall time — the "no unattributed time" invariant
//!    (`RC_OBS_SMOKE_STRICT=1` tightens the bar to 90%, the release
//!    acceptance threshold; default is 75% so debug builds with their
//!    heavier constant factors stay green), and
//! 4. a WAL append failure freezes a postmortem flight dump containing
//!    the failing epoch.

use rcforest::serve::{
    PhaseTotals, RcServe, Request, Response, ServeClient, ServeConfig, ServeForest, SyncPolicy,
};
use std::time::Duration;

/// Path forest 0-1-2-…-(n-1) with weight-1 edges.
fn path_server(n: usize, cfg: ServeConfig) -> RcServe {
    let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (v - 1, v, 1)).collect();
    let forest = ServeForest::build_edges(n, &edges, rcforest::BuildOptions::default())
        .expect("path forest is valid");
    RcServe::start(forest, cfg)
}

fn pipelined_cfg(flight: usize) -> ServeConfig {
    ServeConfig {
        drain_threshold: 64,
        max_linger: Duration::from_micros(200),
        pipeline_depth: 1,
        flight_recorder: flight,
        ..ServeConfig::default()
    }
}

/// Drive `threads` clients × `ops_per_thread` mixed requests (edge-weight
/// churn on the path plus the cheap query families) and wait for all.
fn drive(client: &ServeClient, n: usize, threads: usize, ops_per_thread: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let c = client.clone();
            s.spawn(move || {
                let mut handles = Vec::with_capacity(ops_per_thread);
                for i in 0..ops_per_thread {
                    let v = ((t * ops_per_thread + i) % (n - 1)) as u32;
                    let req = match i % 4 {
                        0 => Request::UpdateEdgeWeight {
                            u: v,
                            v: v + 1,
                            w: i as u64,
                        },
                        1 => Request::Connected { u: 0, v },
                        2 => Request::PathSum { u: v, v: v + 1 },
                        _ => Request::Representative { v },
                    };
                    handles.push(c.submit(req));
                }
                for h in handles {
                    assert_ne!(
                        h.wait(),
                        Response::Rejected,
                        "healthy server rejects nothing"
                    );
                }
            });
        }
    });
}

/// Minimal Prometheus text-format check: every line is either a
/// `# TYPE <name> <kind>` header or a `<name>[{labels}] <integer>`
/// sample, and every header is followed by at least one sample of its
/// metric. Returns the set of metric names seen.
fn parse_prometheus(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut pending_header: Option<String> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line has a name");
            let kind = it.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown exposition kind {kind:?} in {line:?}"
            );
            assert!(it.next().is_none(), "trailing tokens in {line:?}");
            pending_header = Some(name.to_string());
            names.push(name.to_string());
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample is `name value`");
        let base = series.split('{').next().unwrap();
        value.parse::<i128>().unwrap_or_else(|_| {
            panic!("sample value must be an integer, got {value:?} in {line:?}")
        });
        if let Some(header) = &pending_header {
            assert!(
                base.starts_with(header.as_str()),
                "sample {base:?} does not belong to preceding header {header:?}"
            );
        }
    }
    names
}

#[test]
fn dump_telemetry_round_trips_and_exports_parse() {
    let n = 512;
    let server = path_server(n, pipelined_cfg(128));
    let client = server.client();
    let (threads, ops) = (4, 400);
    drive(&client, n, threads, ops);

    let dump = match client.call(Request::DumpTelemetry) {
        Response::Telemetry(d) => d,
        other => panic!("DumpTelemetry answered {other:?}"),
    };
    server.shutdown();

    let total = (threads * ops) as u64;
    assert!(
        dump.snapshot.counter("serve_epochs_total").unwrap() >= 1,
        "at least one epoch served"
    );
    assert_eq!(
        dump.snapshot.counter("serve_requests_total").unwrap(),
        total,
        "every driven request counted (the dump itself is not an epoch op)"
    );
    assert!(!dump.traces.is_empty(), "flight recorder retained traces");

    // Prometheus exposition parses and carries the serve families.
    let names = parse_prometheus(&dump.snapshot.to_prometheus());
    for required in [
        "serve_request_latency_ns",
        "serve_epochs_total",
        "serve_requests_total",
        "serve_phase_query_ns",
        "serve_epoch_wall_ns",
        "serve_queue_depth",
    ] {
        assert!(names.iter().any(|n| n == required), "missing {required}");
    }

    // JSON export: structurally sane without a JSON parser dependency.
    let json = dump.snapshot.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
    assert!(json.contains("\"serve_epochs_total\":"));
    assert!(json.contains("\"p99_ns\":"));

    // Pool counters surface exactly when the feature is compiled in.
    let pool = dump.snapshot.counter("pool_jobs_published_total");
    if cfg!(feature = "pool-metrics") {
        assert!(pool.is_some(), "pool counters registered under the feature");
    } else {
        assert!(pool.is_none(), "no pool counters without the feature");
    }
}

#[test]
fn phase_breakdown_covers_epoch_wall_time() {
    // The acceptance bar: phase spans must account for >= 90% of epoch
    // wall time in release (strict); 75% otherwise — unattributed time
    // means a phase is missing from the instrumentation.
    let threshold = if std::env::var("RC_OBS_SMOKE_STRICT").is_ok() {
        0.90
    } else {
        0.75
    };
    for pipeline_depth in [0usize, 1] {
        let n = 512;
        let server = path_server(
            n,
            ServeConfig {
                pipeline_depth,
                ..pipelined_cfg(256)
            },
        );
        let client = server.client();
        drive(&client, n, 4, 500);
        server.shutdown();

        let traces = client.flight_dump();
        assert!(!traces.is_empty());
        let totals = PhaseTotals::from_traces(&traces);
        assert!(
            totals.coverage() >= threshold,
            "depth {pipeline_depth}: phase coverage {:.3} below {threshold} \
             (phase sum {} ns vs wall {} ns over {} epochs)",
            totals.coverage(),
            totals.phase_sum_ns(),
            totals.wall_ns,
            totals.epochs,
        );
        // The breakdown must also never over-account: each phase span is
        // measured inside the epoch's wall interval, so the sum can only
        // exceed the wall by timer jitter (10% + 100us slack).
        for t in &traces {
            assert!(
                t.phase_sum_ns() <= t.epoch_wall_ns + t.epoch_wall_ns / 10 + 100_000,
                "phase sum {} ns over-accounts wall {} ns: {t:?}",
                t.phase_sum_ns(),
                t.epoch_wall_ns,
            );
        }
    }
}

#[test]
fn wal_failure_freezes_postmortem_flight_dump() {
    use rcforest::serve::Durability;
    let dir = std::env::temp_dir().join(format!("rc-telemetry-fail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut durability = Durability::new(&dir, 8).sync_policy(SyncPolicy::Never);
    durability.fail_appends_after = 2;
    let (server, _) = RcServe::start_durable(ServeConfig::unbatched(), durability, None).unwrap();
    let client = server.client();

    assert_eq!(
        client.call(Request::Link { u: 0, v: 1, w: 1 }),
        Response::Updated(Ok(()))
    );
    assert_eq!(
        client.call(Request::Link { u: 1, v: 2, w: 1 }),
        Response::Updated(Ok(()))
    );
    assert!(
        client.failure_dump().is_none(),
        "no postmortem before the failure"
    );
    // Third append hits the injected failure.
    assert_eq!(
        client.call(Request::Link { u: 2, v: 3, w: 1 }),
        Response::Rejected
    );
    server.shutdown();

    let dump = client
        .failure_dump()
        .expect("worker failure freezes a flight dump");
    let failing = dump
        .iter()
        .find(|t| t.failed)
        .expect("postmortem contains the failing epoch's trace");
    assert_eq!(
        failing.epoch, 3,
        "the third epoch is the one that hit the injected append failure"
    );
    assert!(
        dump.iter().filter(|t| !t.failed).count() >= 2,
        "the successful epochs' traces are retained for context"
    );
    // The failure is also visible in the metrics.
    let snap = client.metrics_snapshot();
    assert_eq!(snap.counter("serve_failed_epochs_total"), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}
