//! Integration stress: the full stack (gen → ternary → core queries)
//! against the naive oracle under interleaved updates and queries.

use rcforest::naive::NaiveForest;
use rcforest::parlay::rng::SplitMix64;
use rcforest::{GeneratedForest, SumAgg, TernaryForest};

#[test]
fn generated_forest_full_query_suite_vs_naive() {
    let n = 800usize;
    let cfg = rcforest::ForestGenConfig {
        n,
        mean_chain: 7.0,
        dist: rcforest::ChainDist::Geometric,
        ln_prob: 0.4,
        max_weight: 100,
        seed: 31,
    };
    let mut g = GeneratedForest::generate(cfg);
    let edges = g.edges();

    let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
    let mut naive = NaiveForest::<i64>::new(n);
    let e64: Vec<(u32, u32, i64)> = edges.iter().map(|&(u, v, w)| (u, v, w as i64)).collect();
    f.batch_link(&e64).unwrap();
    for &(u, v, w) in &e64 {
        naive.link(u, v, w).unwrap();
    }

    let mut rng = SplitMix64::new(5);
    for round in 0..6 {
        // Batch update via the generator's connector stream.
        let dels = g.delete_batch(20);
        let ins: Vec<(u32, u32, i64)> = g
            .insert_batch(20)
            .iter()
            .map(|&(u, v, w)| (u, v, w as i64))
            .collect();
        f.batch_cut(&dels).unwrap();
        f.batch_link(&ins).unwrap();
        for &(u, v) in &dels {
            naive.cut(u, v).unwrap();
        }
        for &(u, v, w) in &ins {
            naive.link(u, v, w).unwrap();
        }
        f.validate().unwrap();

        // Batch connectivity + path sums.
        let pairs: Vec<(u32, u32)> = (0..60)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let conn = f.batch_connected(&pairs);
        let sums = f.batch_path_aggregate(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(
                conn[i],
                naive.connected(u, v),
                "round {round} conn ({u},{v})"
            );
            let expect = naive.path_edges(u, v).map(|es| es.iter().sum::<i64>());
            assert_eq!(sums[i], expect, "round {round} path ({u},{v})");
        }

        // Batch LCA.
        let triples: Vec<(u32, u32, u32)> = (0..40)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        let lcas = f.batch_lca(&triples);
        for (i, &(u, v, r)) in triples.iter().enumerate() {
            assert_eq!(
                lcas[i],
                naive.lca(u, v, r),
                "round {round} lca ({u},{v},{r})"
            );
        }

        // Batched subtree queries on real edges.
        let subs: Vec<(u32, u32)> = g.query_subtrees(40);
        let got = f.batch_subtree_aggregate(&subs);
        for (i, &(u, p)) in subs.iter().enumerate() {
            // Vertex weights are all zero, so only edge weights contribute.
            let (_vs, es) = naive.subtree(u, p);
            let expect: i64 = es.iter().sum::<i64>();
            assert_eq!(got[i], Some(expect), "round {round} subtree ({u},{p})");
        }
    }
}

#[test]
fn bottleneck_queries_on_generated_forest() {
    let n = 500usize;
    let cfg = rcforest::ForestGenConfig {
        n,
        seed: 77,
        ..Default::default()
    };
    let mut g = GeneratedForest::generate(cfg);
    let edges = g.edges();
    let mut f = TernaryForest::<rcforest::MaxEdgeAgg<u64>>::new(n, 0);
    f.batch_link(&edges).unwrap();
    let mut naive = NaiveForest::<u64>::new(n);
    for &(u, v, w) in &edges {
        naive.link(u, v, w).unwrap();
    }
    let pairs = g.query_pairs(150);
    let got = f.batch_path_extrema(&pairs);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let expect = naive.path_edges(u, v);
        match (&got[i], expect) {
            (None, None) => {}
            (Some(opt), Some(es)) => {
                let want = es.iter().copied().max();
                assert_eq!(opt.map(|e| e.w), want, "({u},{v})");
            }
            (a, b) => panic!("({u},{v}): {a:?} vs {b:?}"),
        }
    }
}
