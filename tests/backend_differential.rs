//! Differential oracle across [`DynamicForest`] backends.
//!
//! Every pair of backends is driven through the same seeded request
//! stream — structural churn, weight/mark updates, deliberately invalid
//! ops, and all query families — and must agree on *every* response,
//! including exact [`rcforest::ForestError`] outcomes. The headline test
//! is `lct_vs_rc_100k`: the sequential link-cut baseline against the
//! batch-parallel RC forest over ≥ 100k ops (the full count runs in
//! release; debug builds run a reduced stream so `cargo test` stays
//! quick — CI runs the release version explicitly).

use rcforest::{
    assert_backends_agree, DynamicForest, ForestGenConfig, LctForest, NaiveStdForest, OpMix,
    RcForest, RequestStreamConfig, StdAgg, TernaryStdForest,
};

fn stream_cfg(n: usize, seed: u64, max_weight: u64) -> RequestStreamConfig {
    RequestStreamConfig {
        forest: ForestGenConfig {
            n,
            seed,
            max_weight,
            ..Default::default()
        },
        mix: OpMix::balanced(),
        // Exercise the error paths: out-of-range ids, missing edges,
        // duplicate links, degree overflows, cycles.
        invalid_frac: 0.08,
        ..Default::default()
    }
}

/// Acceptance test: LCT vs RC agree on every response over >= 100k ops.
#[test]
fn lct_vs_rc_100k() {
    let (n, ops) = if cfg!(debug_assertions) {
        (1_200, 12_000)
    } else {
        (2_000, 100_000)
    };
    let mut rc = RcForest::<StdAgg>::new(n);
    let mut lct = LctForest::with_max_degree(n, Some(3));
    let report = assert_backends_agree(&mut rc, &mut lct, stream_cfg(n, 0xD1F_001, 64), ops);
    assert_eq!(report.ops, ops);
    assert!(report.rejected > 0, "error paths must be exercised");
    assert!(report.updates > ops / 10 && report.queries > ops / 3);
}

/// Ground truth: LCT vs the naive oracle.
#[test]
fn lct_vs_naive() {
    let n = 700;
    let ops = if cfg!(debug_assertions) {
        6_000
    } else {
        25_000
    };
    let mut lct = LctForest::with_max_degree(n, Some(3));
    let mut naive = NaiveStdForest::with_max_degree(n, Some(3));
    let report = assert_backends_agree(&mut lct, &mut naive, stream_cfg(n, 0xD1F_002, 64), ops);
    assert!(report.rejected > 0);
}

/// Ternarized RC vs LCT, both uncapped. Weights are drawn from a large
/// space: the ternary backend tie-breaks extreme-edge witnesses on inner
/// (dummy) ids before mapping them back, so equal-weight edges could
/// legitimately surface different witnesses.
#[test]
fn ternary_vs_lct_uncapped() {
    let n = 500;
    let ops = if cfg!(debug_assertions) {
        4_000
    } else {
        20_000
    };
    let mut tern = TernaryStdForest::new_std(n);
    let mut lct = LctForest::new(n);
    let report = assert_backends_agree(&mut tern, &mut lct, stream_cfg(n, 0xD1F_003, 1 << 40), ops);
    assert!(report.rejected > 0);
}

/// RC vs naive under an update-heavy mix (structural churn dominates).
#[test]
fn rc_vs_naive_update_heavy() {
    let n = 600;
    let ops = if cfg!(debug_assertions) {
        5_000
    } else {
        20_000
    };
    let mut rc = RcForest::<StdAgg>::new(n);
    let mut naive = NaiveStdForest::with_max_degree(n, Some(3));
    let cfg = RequestStreamConfig {
        mix: OpMix::update_heavy(),
        ..stream_cfg(n, 0xD1F_004, 64)
    };
    let report = assert_backends_agree(&mut rc, &mut naive, cfg, ops);
    assert!(report.updates > report.queries / 2);
}

/// Degree-overflow parity: capped backends reject the same link with the
/// same error while an uncapped pair accepts it.
#[test]
fn degree_cap_parity() {
    let mut rc = RcForest::<StdAgg>::new(8);
    let mut lct3 = LctForest::with_max_degree(8, Some(3));
    let mut lct = LctForest::new(8);
    for f in [&mut lct3 as &mut dyn DynamicForest, &mut lct, &mut rc] {
        for v in 1..=3 {
            f.link(0, v, 1).unwrap();
        }
    }
    assert_eq!(
        DynamicForest::link(&mut rc, 0, 4, 1),
        DynamicForest::link(&mut lct3, 0, 4, 1),
    );
    assert!(DynamicForest::link(&mut lct, 0, 4, 1).is_ok());
}

/// Executor stress: the pool must never change an answer. The LCT-vs-RC
/// differential stream re-runs under dedicated 2- and 4-thread pools —
/// every batch entry point in the RC forest then executes with real
/// worker threads claiming chunks concurrently (on a 1-core host the pool
/// is oversubscribed, which still exercises cross-thread handoff and the
/// engine's atomic ancestor claims).
#[test]
fn lct_vs_rc_under_multithreaded_pools() {
    for threads in [2usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("dedicated pool");
        let (n, ops) = if cfg!(debug_assertions) {
            (800, 6_000)
        } else {
            (2_000, 40_000)
        };
        let report = pool.install(|| {
            let mut rc = RcForest::<StdAgg>::new(n);
            let mut lct = LctForest::with_max_degree(n, Some(3));
            assert_backends_agree(
                &mut rc,
                &mut lct,
                stream_cfg(n, 0xD1F_9B0 + threads as u64, 64),
                ops,
            )
        });
        assert_eq!(report.ops, ops, "threads = {threads}");
        assert!(report.queries > ops / 3, "threads = {threads}");
    }
}

/// Same stress against the ground-truth naive oracle at 4 threads, with a
/// larger weight space so aggregate paths (extrema witnesses, subtree
/// sums) see non-trivial values.
#[test]
fn rc_vs_naive_under_multithreaded_pool() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("dedicated pool");
    let (n, ops) = if cfg!(debug_assertions) {
        (500, 4_000)
    } else {
        (900, 25_000)
    };
    let report = pool.install(|| {
        let mut rc = RcForest::<StdAgg>::new(n);
        let mut naive = NaiveStdForest::with_max_degree(n, Some(3));
        assert_backends_agree(&mut rc, &mut naive, stream_cfg(n, 0xD1F_9B4, 100_000), ops)
    });
    assert_eq!(report.ops, ops);
    assert!(report.rejected > 0, "error paths exercised under the pool");
}

/// State export round-trips on every backend: drive a backend through a
/// seeded stream, `export_state`, load the export into a fresh instance
/// of the same backend, and demand (a) the re-export is identical and
/// (b) both answer a probe battery across the query families alike.
/// Exports are canonical, so (a) is plain `==`.
#[test]
fn export_state_round_trips_on_every_backend() {
    use rcforest::{apply_op, RequestStream};

    fn churn<B: DynamicForest>(f: &mut B, n: usize, seed: u64) {
        let mut stream = RequestStream::new(stream_cfg(n, seed, 1 << 20));
        f.batch_link(&stream.initial_edges())
            .expect("initial build");
        for op in stream.ops(1_500) {
            apply_op(f, &op);
        }
    }

    fn probe<A: DynamicForest, B: DynamicForest>(a: &mut A, b: &mut B, n: u32) {
        for i in 0..64u32 {
            let (u, v, r) = (i * 7 % n, (i * 13 + 1) % n, (i * 29 + 3) % n);
            assert_eq!(a.connected(u, v), b.connected(u, v), "connected {u},{v}");
            assert_eq!(a.path_sum(u, v), b.path_sum(u, v), "path_sum {u},{v}");
            assert_eq!(
                a.path_extrema(u, v),
                b.path_extrema(u, v),
                "extrema {u},{v}"
            );
            assert_eq!(a.lca(u, v, r), b.lca(u, v, r), "lca {u},{v},{r}");
            assert_eq!(a.subtree_sum(u, v), b.subtree_sum(u, v), "subtree {u},{v}");
            assert_eq!(a.nearest_marked(u), b.nearest_marked(u), "near {u}");
        }
    }

    fn round_trip<B: DynamicForest>(original: &mut B, fresh: &mut B, n: usize) {
        let state = original.export_state();
        state.validate().expect("canonical export");
        fresh.import_state(&state).expect("import of valid state");
        assert_eq!(
            fresh.export_state(),
            state,
            "{}: import → export not identity",
            original.backend_name()
        );
        probe(original, fresh, n as u32);
    }

    let n = 300;
    let seed = 0x57A7E;

    let mut rc = RcForest::<StdAgg>::new(n);
    churn(&mut rc, n, seed);
    round_trip(&mut rc, &mut RcForest::<StdAgg>::new(n), n);

    let mut nv = NaiveStdForest::with_max_degree(n, Some(3));
    churn(&mut nv, n, seed);
    round_trip(&mut nv, &mut NaiveStdForest::with_max_degree(n, Some(3)), n);

    let mut lct = LctForest::with_max_degree(n, Some(3));
    churn(&mut lct, n, seed);
    round_trip(&mut lct, &mut LctForest::with_max_degree(n, Some(3)), n);

    let mut tern = TernaryStdForest::new_std(n);
    churn(&mut tern, n, seed);
    round_trip(&mut tern, &mut TernaryStdForest::new_std(n), n);

    // The same stream produced the same logical state everywhere except
    // the uncapped ternary backend (it accepts degree-overflow links the
    // capped ones reject) — canonical exports make that comparable too.
    assert_eq!(rc.export_state(), nv.export_state(), "rc vs naive state");
    assert_eq!(rc.export_state(), lct.export_state(), "rc vs lct state");

    // And a cross-backend restore: an RC export imports into a fresh LCT
    // (caps are compatible: RC states are degree-≤3 by construction).
    let mut lct2 = LctForest::with_max_degree(n, Some(3));
    lct2.import_state(&rc.export_state()).expect("cross import");
    assert_eq!(lct2.export_state(), rc.export_state());

    // ForestState::build_std_forest is the snapshot-restore path.
    let rebuilt = rc
        .export_state()
        .build_std_forest(rcforest::BuildOptions::default())
        .expect("state is a valid forest");
    assert_eq!(DynamicForest::export_state(&rebuilt), rc.export_state());
}
