//! Seeded fuzz for every byte-level decoder in the durability tier.
//!
//! Three input families — pure random bytes, truncations of valid
//! encodings, and single-bit flips of valid encodings — are fed to the
//! frame decoder, the epoch/snapshot codecs, the snapshot file reader,
//! the read-only WAL scan, the replication wire reader, and the cost
//! calibration table decoder. The invariants under fuzz are:
//!
//! - **No panic** — every decoder returns `Err`/`None` on garbage; none
//!   unwraps, slices out of range, or divides by zero.
//! - **No over-allocation** — a corrupted header can claim absurd
//!   element counts or frame lengths; decoders must bound what they
//!   reserve by the bytes actually present (the `Reader::count` and
//!   `MAX_FRAME_LEN` guards), so a kilobyte of garbage never allocates
//!   gigabytes. Pinned by decoding payloads whose headers declare
//!   2^60-element vectors.
//!
//! Deterministic (seeded splitmix64 stream), so a failure reproduces.

use rcforest::obs::CalibrationTable;
use rcforest::repl::{read_message, Message};
use rcforest::store::codec::{decode_epoch, decode_snapshot, encode_epoch, encode_snapshot};
use rcforest::store::frame::{crc32, decode_frame, encode_frame, scan_frames};
use rcforest::store::snapshot::{read_snapshot, write_snapshot};
use rcforest::store::{read_records, EpochRecord, FlushRecord};
use rcforest::ForestState;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (splitmix(seed.wrapping_mul(0x9e37).wrapping_add(i as u64)) >> 32) as u8)
        .collect()
}

/// A representative valid epoch record to truncate and bit-flip.
fn sample_record() -> EpochRecord {
    EpochRecord {
        epoch: 42,
        flushes: vec![
            FlushRecord {
                cuts: vec![(1, 2), (5, 6)],
                links: vec![(0, 3, 17), (4, 7, 99)],
                eweights: vec![(0, 1, 1000)],
                vweights: vec![(2, 55, true), (3, 0, false)],
            },
            FlushRecord {
                links: vec![(8, 9, 1)],
                ..Default::default()
            },
        ],
    }
}

fn sample_state() -> ForestState {
    ForestState::from_edges(16, &[(0, 1, 3), (1, 2, 9), (4, 5, 1), (10, 11, 7)])
}

/// Throw one mutated buffer at every in-memory decoder. Outcomes are
/// unchecked — surviving without a panic (and without an OOM abort) is
/// the assertion.
fn exercise_decoders(bytes: &[u8]) {
    let _ = decode_epoch(bytes);
    let _ = decode_snapshot(bytes);
    let _ = decode_frame(bytes, 0);
    let mut seen = 0usize;
    let consumed = scan_frames(bytes, 0, |p| seen += p.len());
    assert!(consumed <= bytes.len(), "scan cannot consume past the end");
    let _ = read_message(&mut std::io::Cursor::new(bytes));
    let _ = CalibrationTable::decode(bytes);
}

#[test]
fn random_truncated_and_bitflipped_inputs_never_panic() {
    // Family 1: pure random bytes at assorted sizes.
    for seed in 0..64u64 {
        let len = (splitmix(seed) % 512) as usize;
        exercise_decoders(&random_bytes(seed, len));
    }

    // Valid encodings to mutate.
    let rec_bytes = encode_epoch(&sample_record());
    let snap_bytes = encode_snapshot(9, &sample_state());
    let mut framed = Vec::new();
    encode_frame(&mut framed, &rec_bytes);
    let mut wire = Vec::new();
    rcforest::repl::encode_message(
        &mut wire,
        &Message::Rec {
            prev_epoch: 41,
            leader_committed: 42,
            record: sample_record(),
        },
    );

    let mut model_cells = vec![(0u64, 0.0f64); 8 * 3 * 18];
    model_cells[17] = (12, 840.5);
    model_cells[100] = (3, 17.0);
    let table_bytes = CalibrationTable { cells: model_cells }.encode();
    assert!(
        CalibrationTable::decode(&table_bytes).is_some(),
        "control: the valid table decodes"
    );

    for base in [&rec_bytes, &snap_bytes, &framed, &wire, &table_bytes] {
        // Family 2: every truncation length (prefixes of a valid
        // encoding are the torn-write shape).
        for cut in 0..base.len() {
            exercise_decoders(&base[..cut]);
        }
        // Family 3: seeded single-bit flips.
        for seed in 0..256u64 {
            let h = splitmix(seed.wrapping_add(0xb17f11b));
            let mut mutated = (*base).clone();
            let at = (h % mutated.len() as u64) as usize;
            mutated[at] ^= 1 << ((h >> 32) % 8);
            exercise_decoders(&mutated);
        }
    }
}

#[test]
fn hostile_counts_do_not_over_allocate() {
    // An epoch-record payload whose flush header claims 2^60 cuts, with
    // only a handful of bytes behind it. `Reader::count` must clamp by
    // the remaining bytes and fail, not reserve a 2^60-element Vec.
    let mut evil = Vec::new();
    evil.extend_from_slice(&42u64.to_le_bytes()); // epoch
    evil.extend_from_slice(&1u64.to_le_bytes()); // one flush
    evil.extend_from_slice(&(1u64 << 60).to_le_bytes()); // cuts count
    evil.extend_from_slice(&[7u8; 24]); // far too few bytes for that
    assert!(
        decode_epoch(&evil).is_err(),
        "hostile count must not decode"
    );

    // Same shape against the snapshot codec: a vertex count the buffer
    // cannot possibly back.
    let mut evil_snap = Vec::new();
    evil_snap.extend_from_slice(&9u64.to_le_bytes()); // epoch
    evil_snap.extend_from_slice(&(1u64 << 60).to_le_bytes()); // n
    evil_snap.extend_from_slice(&[3u8; 32]);
    assert!(decode_snapshot(&evil_snap).is_err());

    // A frame header claiming MAX_FRAME_LEN+ payload over a short buffer
    // must be rejected by bounds, not chased.
    let mut evil_frame = Vec::new();
    evil_frame.extend_from_slice(&u32::MAX.to_le_bytes());
    evil_frame.extend_from_slice(&0u32.to_le_bytes());
    evil_frame.extend_from_slice(&[0u8; 64]);
    assert!(decode_frame(&evil_frame, 0).is_none());
    assert!(read_message(&mut std::io::Cursor::new(&evil_frame)).is_err());

    // And a *checksum-valid* frame whose payload is a hostile record:
    // the frame layer admits it, the codec layer must still refuse.
    let mut framed_evil = Vec::new();
    encode_frame(&mut framed_evil, &evil);
    let (payload, _) = decode_frame(&framed_evil, 0).expect("frame itself is well-formed");
    assert_eq!(crc32(payload), crc32(&evil));
    assert!(decode_epoch(payload).is_err());
}

#[test]
fn snapshot_and_wal_file_readers_survive_corrupt_files() {
    let dir = std::env::temp_dir().join(format!("rc-fuzz-files-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A valid snapshot file, then bit-flipped and truncated copies.
    let path = write_snapshot(&dir, 5, &sample_state()).expect("write snapshot");
    let valid = std::fs::read(&path).unwrap();
    assert!(
        read_snapshot(&path).is_ok(),
        "control: the valid file reads"
    );
    for seed in 0..64u64 {
        let h = splitmix(seed.wrapping_add(0x5eed));
        let mutated_path = dir.join(format!("mut-{seed}.rcsnap"));
        let mut mutated = valid.clone();
        if seed % 2 == 0 {
            mutated.truncate((h % valid.len() as u64) as usize);
        } else {
            let at = (h % valid.len() as u64) as usize;
            mutated[at] ^= 1 << ((h >> 32) % 8);
        }
        std::fs::write(&mutated_path, &mutated).unwrap();
        // Corruption → Err; a flip the checksum cannot see (inside
        // padding it would tolerate) → Ok. Either way: no panic.
        let _ = read_snapshot(&mutated_path);
    }

    // Random garbage as a WAL: the read-only scan must reject non-WAL
    // magic and stop cleanly at the first bad frame, never panicking.
    for seed in 0..32u64 {
        let wal_path = dir.join(format!("fuzz-{seed}.rclog"));
        std::fs::write(
            &wal_path,
            random_bytes(seed, (splitmix(seed) % 256) as usize),
        )
        .unwrap();
        let _ = read_records(&wal_path);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
