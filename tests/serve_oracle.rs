//! Serializability oracle for the `rc-serve` coalescer.
//!
//! N client threads hammer one server with randomized, partly-invalid
//! request streams (`rc-gen`). The server records its commit log (updates
//! in submission order, then queries, per epoch). The oracle replays that
//! log sequentially against the [`DynamicForest`] backend trait's naive
//! reference implementation ([`NaiveStdForest`]) and asserts that
//! **every** response the server produced — update outcomes including
//! exact `ForestError`s, and all seven query families — matches the
//! sequential execution. Any lost update, phantom read, torn epoch or
//! conflict-resolution bug shows up as a response mismatch.
//!
//! The only serve-layer semantics not inherited from the trait verbatim:
//! `UpdateEdgeWeight` range-checks its endpoints *before* probing edge
//! presence (the trait's `set_edge_weight` folds out-of-range ids into
//! `MissingEdge`, matching the raw core call).

use rcforest::serve::{
    CptResult, DispatchMode, DispatchStats, LogEntry, PathSummary, RcServe, Request, Response,
    ServeConfig, ServeForest,
};
use rcforest::{DynamicForest, ForestError, NaiveStdForest, RequestStream, RequestStreamConfig};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::time::Duration;

const MAX_DEGREE: usize = 3;

/// Canonical hash of the naive forest's full exported state — two equal
/// hashes here are treated as "identical forest state" by the MVCC
/// version-stamp audit.
fn state_hash(nv: &NaiveStdForest) -> u64 {
    let st = nv.export_state();
    let mut h = DefaultHasher::new();
    st.n.hash(&mut h);
    st.edges.hash(&mut h);
    st.weights.hash(&mut h);
    st.marks.hash(&mut h);
    h.finish()
}

struct Oracle {
    nv: NaiveStdForest,
}

impl Oracle {
    fn new(n: usize, edges: &[(u32, u32, u64)]) -> Self {
        let mut nv = NaiveStdForest::with_max_degree(n, Some(MAX_DEGREE));
        nv.batch_link(edges).expect("valid initial forest");
        Oracle { nv }
    }

    fn in_range(&self, v: u32) -> bool {
        (v as usize) < self.nv.num_vertices()
    }

    fn range_check(&self, v: u32) -> Result<(), ForestError> {
        if self.in_range(v) {
            Ok(())
        } else {
            Err(ForestError::VertexOutOfRange {
                v,
                n: self.nv.num_vertices(),
            })
        }
    }

    /// Expected outcome of an update, in the serve layer's documented
    /// check order; applies the op on success.
    fn apply_update(&mut self, req: &Request) -> Result<(), ForestError> {
        match *req {
            Request::Link { u, v, w } => self.nv.link(u, v, w),
            Request::Cut { u, v } => self.nv.cut(u, v),
            Request::UpdateEdgeWeight { u, v, w } => {
                self.range_check(u)?;
                self.range_check(v)?;
                self.nv.set_edge_weight(u, v, w)
            }
            Request::UpdateVertexWeight { v, w } => self.nv.set_vertex_weight(v, w),
            Request::Mark { v } => self.nv.set_mark(v, true),
            Request::Unmark { v } => self.nv.set_mark(v, false),
            _ => unreachable!("query in update replay"),
        }
    }

    fn check_query(&mut self, entry: &LogEntry, repr_seen: &mut HashMap<u32, u32>) {
        let req = &entry.request;
        let resp = &entry.response;
        let ctx = || format!("epoch {} seq {} {:?}", entry.epoch, entry.seq, req);
        match *req {
            Request::Connected { u, v } => {
                assert_eq!(resp, &Response::Bool(self.nv.connected(u, v)), "{}", ctx());
            }
            Request::Representative { v } => {
                let Response::Vertex(got) = resp else {
                    panic!("{}: wrong response kind {resp:?}", ctx());
                };
                assert_eq!(got.is_some(), self.in_range(v), "{}", ctx());
                if let Some(r) = got {
                    assert!(
                        self.in_range(*r) && self.nv.connected(v, *r),
                        "{}: repr {r} outside component",
                        ctx()
                    );
                    // Same epoch + same repr => same component.
                    if let Some(&w) = repr_seen.get(r) {
                        assert!(self.nv.connected(v, w), "{}: repr collision", ctx());
                    } else {
                        repr_seen.insert(*r, v);
                    }
                }
            }
            Request::PathSum { u, v } => {
                assert_eq!(resp, &Response::Sum(self.nv.path_sum(u, v)), "{}", ctx());
            }
            Request::SubtreeSum { v, parent } => {
                assert_eq!(
                    resp,
                    &Response::Sum(self.nv.subtree_sum(v, parent)),
                    "{}",
                    ctx()
                );
            }
            Request::Lca { u, v, r } => {
                assert_eq!(resp, &Response::Vertex(self.nv.lca(u, v, r)), "{}", ctx());
            }
            Request::Bottleneck { u, v } => {
                assert_eq!(
                    resp,
                    &Response::Extrema(self.nv.path_extrema(u, v)),
                    "{}",
                    ctx()
                );
            }
            Request::NearestMarked { v } => {
                let want = self.nv.nearest_marked(v);
                let Response::Near(got) = resp else {
                    panic!("{}: wrong response kind {resp:?}", ctx());
                };
                // Distances must agree (witnesses only differ on ties).
                assert_eq!(got.map(|x| x.0), want.map(|x| x.0), "{}", ctx());
            }
            Request::Cpt { ref terminals } => {
                let Response::Cpt(cpt) = resp else {
                    panic!("{}: wrong response kind {resp:?}", ctx());
                };
                self.check_cpt(terminals, cpt, &ctx());
            }
            _ => unreachable!("update in query replay"),
        }
    }

    /// The compressed tree must preserve pairwise path summaries exactly.
    fn check_cpt(&mut self, terminals: &[u32], cpt: &CptResult, ctx: &str) {
        let index: HashMap<u32, usize> = cpt
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut adj: Vec<Vec<(usize, PathSummary)>> = vec![Vec::new(); cpt.vertices.len()];
        for &(a, b, p) in &cpt.edges {
            adj[index[&a]].push((index[&b], p));
            adj[index[&b]].push((index[&a], p));
        }
        let combine = |a: &PathSummary, b: &PathSummary| PathSummary {
            sum: a.sum.wrapping_add(b.sum),
            min: match (a.min, b.min) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(if (x.w, x.u, x.v) <= (y.w, y.u, y.v) {
                    x
                } else {
                    y
                }),
            },
            max: match (a.max, b.max) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(if (x.w, x.u, x.v) >= (y.w, y.u, y.v) {
                    x
                } else {
                    y
                }),
            },
        };
        let in_range: Vec<u32> = terminals
            .iter()
            .copied()
            .filter(|&t| self.in_range(t))
            .collect();
        for &a in &in_range {
            for &b in &in_range {
                if a >= b {
                    continue;
                }
                let want = self.nv.path_extrema(a, b);
                // BFS in the compressed tree.
                let got = (|| {
                    let (sa, sb) = (*index.get(&a)?, *index.get(&b)?);
                    let mut val: Vec<Option<PathSummary>> = vec![None; adj.len()];
                    val[sa] = Some(PathSummary {
                        sum: 0,
                        min: None,
                        max: None,
                    });
                    let mut queue = std::collections::VecDeque::from([sa]);
                    let mut prev = vec![usize::MAX; adj.len()];
                    prev[sa] = sa;
                    while let Some(x) = queue.pop_front() {
                        let vx = val[x].unwrap();
                        for &(y, p) in &adj[x] {
                            if prev[y] == usize::MAX {
                                prev[y] = x;
                                val[y] = Some(combine(&vx, &p));
                                queue.push_back(y);
                            }
                        }
                    }
                    val[sb]
                })();
                assert_eq!(got, want, "{ctx}: cpt pair ({a},{b})");
            }
        }
    }
}

/// Drive `threads` clients over partitioned streams, then replay the
/// commit log against the oracle. Returns the server's cumulative
/// dispatch counters so adaptive-dispatch tests can assert which
/// engines actually ran (every engine must produce identical answers —
/// that is what the replay checks).
fn run_oracle(cfg: ServeConfig, threads: usize, ops_per_thread: usize, seed: u64) -> DispatchStats {
    run_oracle_mix(
        cfg,
        threads,
        ops_per_thread,
        seed,
        rcforest::OpMix::balanced(),
    )
}

fn run_oracle_mix(
    cfg: ServeConfig,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
    mix: rcforest::OpMix,
) -> DispatchStats {
    let stream_cfg = RequestStreamConfig {
        forest: rcforest::ForestGenConfig {
            n: 1_500,
            seed,
            max_weight: 64,
            ..Default::default()
        },
        mix,
        invalid_frac: 0.05,
        cpt_terminals: 6,
        ..Default::default()
    };
    let probe = RequestStream::new_partitioned(stream_cfg.clone(), 0, threads);
    let initial = probe.initial_edges();
    let n = probe.num_vertices();
    let forest = ServeForest::build_edges(n, &initial, rcforest::BuildOptions::default()).unwrap();

    let server = RcServe::start(forest, cfg);
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let client = server.client();
            let scfg = stream_cfg.clone();
            std::thread::spawn(move || {
                let mut stream = RequestStream::new_partitioned(scfg, t, threads);
                let mut served = 0usize;
                // Chunked submission: bursts build big epochs, the waits
                // create cross-epoch dependencies.
                let mut remaining = ops_per_thread;
                while remaining > 0 {
                    let chunk = remaining.min(32);
                    remaining -= chunk;
                    let handles: Vec<_> = (0..chunk)
                        .map(|_| client.submit(Request::from_stream(stream.next_op())))
                        .collect();
                    for h in handles {
                        assert!(h.wait() != Response::Rejected);
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();
    let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, threads * ops_per_thread);

    // The log finishes booking after responses fill; join the worker
    // (shutdown) before draining it.
    let auditor = server.client();
    server.shutdown();
    let dispatch_stats = auditor.dispatch_stats();
    let log = auditor.take_commit_log();
    assert_eq!(log.len(), total, "every request committed exactly once");

    // Replay: log order is commit order (updates then queries per epoch).
    let mut oracle = Oracle::new(n, &initial);
    let mut epoch = 0u64;
    let mut repr_seen: HashMap<u32, u32> = HashMap::new();
    let mut seen_seqs = std::collections::HashSet::new();
    // MVCC version-stamp audit: `hashes[E]` is the state hash after epoch
    // E's updates committed (E = 0 is the initial build). A query stamped
    // `version` must observe exactly its own epoch's committed state, so
    // `hashes[version]` must equal the hash of the current replay state.
    let mut hashes: HashMap<u64, u64> = HashMap::new();
    let mut cur_hash: Option<u64> = Some(state_hash(&oracle.nv));
    for entry in &log {
        assert!(seen_seqs.insert(entry.seq), "seq {} duplicated", entry.seq);
        if entry.epoch != epoch {
            let h = cur_hash.unwrap_or_else(|| state_hash(&oracle.nv));
            hashes.insert(epoch, h);
            cur_hash = Some(h);
            epoch = entry.epoch;
            repr_seen.clear();
        }
        if entry.request.is_update() {
            assert_eq!(
                entry.version, entry.epoch,
                "update stamped with a foreign epoch (seq {})",
                entry.seq
            );
            let want = oracle.apply_update(&entry.request);
            if want.is_ok() {
                cur_hash = None; // state changed; recompute lazily
            }
            assert_eq!(
                entry.response,
                Response::Updated(want.clone()),
                "epoch {} seq {} {:?}",
                entry.epoch,
                entry.seq,
                entry.request
            );
        } else {
            assert!(
                entry.version <= entry.epoch,
                "query stamp {} leads its epoch {}",
                entry.version,
                entry.epoch
            );
            let h_now = *cur_hash.get_or_insert_with(|| state_hash(&oracle.nv));
            let h_stamp = if entry.version == entry.epoch {
                h_now
            } else {
                *hashes.get(&entry.version).unwrap_or_else(|| {
                    panic!(
                        "query stamped unseen version {} (epoch {})",
                        entry.version, entry.epoch
                    )
                })
            };
            assert_eq!(
                h_stamp, h_now,
                "epoch {} seq {}: stamped version {} holds a different state \
                 than the epoch the query belongs to",
                entry.epoch, entry.seq, entry.version
            );
            oracle.check_query(entry, &mut repr_seen);
        }
    }
    dispatch_stats
}

#[test]
fn serializability_oracle_eight_threads_coalesced() {
    run_oracle(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            ..ServeConfig::coalesced()
        },
        8,
        400,
        2025,
    );
}

#[test]
fn serializability_oracle_pipelined_query_heavy() {
    // The pipeline's bread and butter: big query phases sweeping
    // published versions while the worker commits later epochs. Every
    // response must match naive replay of exactly its stamped version.
    run_oracle_mix(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            ..ServeConfig::pipelined()
        },
        8,
        400,
        31337,
        rcforest::OpMix::query_heavy(),
    );
}

#[test]
fn serializability_oracle_pipelined_update_heavy_depth2() {
    // Update-heavy traffic at depth 2 starves the version table's reuse
    // fast path (state changes almost every epoch) and keeps two query
    // phases in flight — maximal pressure on buffer recycling + catch-up.
    run_oracle_mix(
        ServeConfig {
            pipeline_depth: 2,
            retained_versions: 3,
            max_linger: Duration::from_millis(1),
            drain_threshold: 2_048,
            record_commit_log: true,
            ..ServeConfig::default()
        },
        8,
        400,
        555,
        rcforest::OpMix::update_heavy(),
    );
}

#[test]
fn serializability_oracle_pipelined_release_scale() {
    // The acceptance-scale run: 100k+ operations through the pipelined
    // server in release builds (debug builds shrink it — the per-publish
    // full-state debug assert makes the large run minutes-slow).
    let ops_per_thread = if cfg!(debug_assertions) { 500 } else { 13_000 };
    run_oracle(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            ..ServeConfig::pipelined()
        },
        8,
        ops_per_thread,
        86_420,
    );
}

#[test]
fn serializability_oracle_tiny_epochs() {
    // Size-bounded epochs force constant drain/requeue traffic.
    run_oracle(
        ServeConfig {
            max_epoch_ops: 24,
            drain_threshold: 8,
            max_linger: Duration::from_micros(50),
            record_commit_log: true,
            ..ServeConfig::default()
        },
        8,
        150,
        77,
    );
}

#[test]
fn serializability_oracle_update_heavy_toggles() {
    // Long linger + update-heavy mix: the same connector edge is routinely
    // cut and relinked (and linked and re-cut) inside one epoch, driving
    // the coalescer's cancellation paths and stale-union-find flushes.
    run_oracle_mix(
        ServeConfig {
            max_linger: Duration::from_millis(2),
            drain_threshold: 2_048,
            record_commit_log: true,
            ..ServeConfig::default()
        },
        8,
        400,
        4242,
        rcforest::OpMix::update_heavy(),
    );
}

#[test]
fn serializability_oracle_unbatched_baseline() {
    run_oracle(
        ServeConfig {
            record_commit_log: true,
            ..ServeConfig::unbatched()
        },
        4,
        80,
        9,
    );
}

#[test]
fn serializability_oracle_adaptive_exploring_all_engines() {
    // A 50% explore rate on small epochs forces every engine to run
    // real traffic across the families; the replay proves the engine
    // choice never changed a single answer.
    let stats = run_oracle_mix(
        ServeConfig {
            max_epoch_ops: 64,
            drain_threshold: 32,
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            explore_frac: 0.5,
            dispatch_mode: DispatchMode::Adaptive,
            ..ServeConfig::pipelined()
        },
        8,
        300,
        60_601,
        rcforest::OpMix::query_heavy(),
    );
    assert!(stats.explored > 0, "50% exploration must fire: {stats:?}");
    let per_engine: Vec<u64> = (0..3)
        .map(|e| (0..8).map(|f| stats.decisions[f][e]).sum())
        .collect();
    assert!(
        per_engine.iter().all(|&d| d > 0),
        "every engine must carry real fan-outs under heavy exploration: {per_engine:?}"
    );
}

#[test]
fn serializability_oracle_adaptive_release_scale() {
    // The acceptance-scale adaptive run: 100k+ operations in release
    // builds with the default adaptive policy (plus enough exploration
    // to keep switching engines all the way through), replayed exactly.
    let ops_per_thread = if cfg!(debug_assertions) { 500 } else { 13_000 };
    let stats = run_oracle_mix(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            explore_frac: 0.2,
            dispatch_mode: DispatchMode::Adaptive,
            ..ServeConfig::pipelined()
        },
        8,
        ops_per_thread,
        90_210,
        rcforest::OpMix::query_heavy(),
    );
    assert!(stats.total > 0 && stats.explored > 0, "{stats:?}");
}

#[test]
fn serializability_oracle_adaptive_pinned_independent() {
    // Pin the parallel single-query engine for every family: same
    // answers as batched, checked by the same replay.
    let stats = run_oracle_mix(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            dispatch_mode: DispatchMode::AlwaysIndependent,
            ..ServeConfig::pipelined()
        },
        8,
        200,
        808,
        rcforest::OpMix::query_heavy(),
    );
    let batched: u64 = (0..8).map(|f| stats.decisions[f][0]).sum();
    assert_eq!(batched, 0, "pinned mode must never pick batched: {stats:?}");
}

#[test]
fn serializability_oracle_adaptive_pinned_sequential() {
    let stats = run_oracle_mix(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            dispatch_mode: DispatchMode::AlwaysSequential,
            ..ServeConfig::coalesced()
        },
        8,
        200,
        909,
        rcforest::OpMix::query_heavy(),
    );
    let seq: u64 = (0..8).map(|f| stats.decisions[f][2]).sum();
    assert!(seq > 0, "sequential engine must have run: {stats:?}");
}
