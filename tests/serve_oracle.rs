//! Serializability oracle for the `rc-serve` coalescer.
//!
//! N client threads hammer one server with randomized, partly-invalid
//! request streams (`rc-gen`). The server records its commit log (updates
//! in submission order, then queries, per epoch). The oracle replays that
//! log sequentially against `NaiveForest` + shadow vertex weights/marks
//! and asserts that **every** response the server produced — update
//! outcomes including exact `ForestError`s, and all seven query families —
//! matches the sequential execution. Any lost update, phantom read, torn
//! epoch or conflict-resolution bug shows up as a response mismatch.

use rcforest::naive::NaiveForest;
use rcforest::serve::{
    CptResult, LogEntry, PathSummary, RcServe, Request, Response, ServeConfig, ServeForest,
};
use rcforest::{ForestError, RequestStream, RequestStreamConfig};
use std::collections::HashMap;
use std::time::Duration;

const MAX_DEGREE: usize = 3;

struct Oracle {
    n: usize,
    naive: NaiveForest<u64>,
    vweights: Vec<u64>,
    marked: Vec<bool>,
}

impl Oracle {
    fn new(n: usize, edges: &[(u32, u32, u64)]) -> Self {
        let mut naive = NaiveForest::new(n);
        for &(u, v, w) in edges {
            naive.link(u, v, w).expect("valid initial forest");
        }
        Oracle {
            n,
            naive,
            vweights: vec![0; n],
            marked: vec![false; n],
        }
    }

    fn in_range(&self, v: u32) -> bool {
        (v as usize) < self.n
    }

    fn range_check(&self, v: u32) -> Result<(), ForestError> {
        if self.in_range(v) {
            Ok(())
        } else {
            Err(ForestError::VertexOutOfRange { v, n: self.n })
        }
    }

    /// Expected outcome of an update, in the serve layer's documented
    /// check order; applies the op on success.
    fn apply_update(&mut self, req: &Request) -> Result<(), ForestError> {
        match *req {
            Request::Link { u, v, w } => {
                self.range_check(u)?;
                self.range_check(v)?;
                if u == v {
                    return Err(ForestError::SelfLoop { v });
                }
                if self.naive.edge_weight(u, v).is_some() {
                    return Err(ForestError::DuplicateEdge { u, v });
                }
                for x in [u, v] {
                    if self.naive.degree(x) >= MAX_DEGREE {
                        return Err(ForestError::DegreeOverflow { v: x });
                    }
                }
                if self.naive.connected(u, v) {
                    return Err(ForestError::WouldCreateCycle { u, v });
                }
                self.naive.link(u, v, w).expect("checked link");
                Ok(())
            }
            Request::Cut { u, v } => {
                self.range_check(u)?;
                self.range_check(v)?;
                if self.naive.edge_weight(u, v).is_none() {
                    return Err(ForestError::MissingEdge { u, v });
                }
                self.naive.cut(u, v).expect("checked cut");
                Ok(())
            }
            Request::UpdateEdgeWeight { u, v, w } => {
                self.range_check(u)?;
                self.range_check(v)?;
                if self.naive.edge_weight(u, v).is_none() {
                    return Err(ForestError::MissingEdge { u, v });
                }
                let old = self.naive.cut(u, v).expect("exists");
                let _ = old;
                self.naive.link(u, v, w).expect("relink");
                Ok(())
            }
            Request::UpdateVertexWeight { v, w } => {
                self.range_check(v)?;
                self.vweights[v as usize] = w;
                Ok(())
            }
            Request::Mark { v } => {
                self.range_check(v)?;
                self.marked[v as usize] = true;
                Ok(())
            }
            Request::Unmark { v } => {
                self.range_check(v)?;
                self.marked[v as usize] = false;
                Ok(())
            }
            _ => unreachable!("query in update replay"),
        }
    }

    /// Path edges with endpoints, for bottleneck/CPT verification.
    fn path_edge_refs(&self, u: u32, v: u32) -> Option<Vec<(u64, u32, u32)>> {
        let p = self.naive.path_vertices(u, v)?;
        Some(
            p.windows(2)
                .map(|w| {
                    let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
                    (*self.naive.edge_weight(a, b).expect("path edge"), a, b)
                })
                .collect(),
        )
    }

    fn expected_extrema(&self, u: u32, v: u32) -> Option<PathSummary> {
        if !self.in_range(u) || !self.in_range(v) {
            return None;
        }
        let edges = self.path_edge_refs(u, v)?;
        let sum = edges.iter().fold(0u64, |a, e| a.wrapping_add(e.0));
        let min = edges.iter().min().copied();
        let max = edges.iter().max().copied();
        let to_ref = |e: (u64, u32, u32)| rcforest::EdgeRef {
            u: e.1,
            v: e.2,
            w: e.0,
        };
        Some(PathSummary {
            sum,
            min: min.map(to_ref),
            max: max.map(to_ref),
        })
    }

    fn check_query(&self, entry: &LogEntry, repr_seen: &mut HashMap<u32, u32>) {
        let req = &entry.request;
        let resp = &entry.response;
        let ctx = || format!("epoch {} seq {} {:?}", entry.epoch, entry.seq, req);
        match *req {
            Request::Connected { u, v } => {
                let want = self.in_range(u) && self.in_range(v) && self.naive.connected(u, v);
                assert_eq!(resp, &Response::Bool(want), "{}", ctx());
            }
            Request::Representative { v } => {
                let Response::Vertex(got) = resp else {
                    panic!("{}: wrong response kind {resp:?}", ctx());
                };
                assert_eq!(got.is_some(), self.in_range(v), "{}", ctx());
                if let Some(r) = got {
                    assert!(
                        self.in_range(*r) && self.naive.connected(v, *r),
                        "{}: repr {r} outside component",
                        ctx()
                    );
                    // Same epoch + same repr => same component.
                    if let Some(&w) = repr_seen.get(r) {
                        assert!(self.naive.connected(v, w), "{}: repr collision", ctx());
                    } else {
                        repr_seen.insert(*r, v);
                    }
                }
            }
            Request::PathSum { u, v } => {
                let want = if self.in_range(u) && self.in_range(v) {
                    self.naive
                        .path_edges(u, v)
                        .map(|es| es.iter().fold(0u64, |a, &w| a.wrapping_add(w)))
                } else {
                    None
                };
                assert_eq!(resp, &Response::Sum(want), "{}", ctx());
            }
            Request::SubtreeSum { v, parent } => {
                let want = if self.in_range(v)
                    && self.in_range(parent)
                    && self.naive.edge_weight(v, parent).is_some()
                {
                    let (vs, es) = self.naive.subtree(v, parent);
                    let mut total = es.iter().fold(0u64, |a, &w| a.wrapping_add(w));
                    for x in vs {
                        total = total.wrapping_add(self.vweights[x as usize]);
                    }
                    Some(total)
                } else {
                    None
                };
                assert_eq!(resp, &Response::Sum(want), "{}", ctx());
            }
            Request::Lca { u, v, r } => {
                let want = if [u, v, r].iter().all(|&x| self.in_range(x)) {
                    self.naive.lca(u, v, r)
                } else {
                    None
                };
                assert_eq!(resp, &Response::Vertex(want), "{}", ctx());
            }
            Request::Bottleneck { u, v } => {
                let want = self.expected_extrema(u, v);
                assert_eq!(resp, &Response::Extrema(want), "{}", ctx());
            }
            Request::NearestMarked { v } => {
                let want = if self.in_range(v) {
                    self.naive.nearest_marked(v, &self.marked)
                } else {
                    None
                };
                let Response::Near(got) = resp else {
                    panic!("{}: wrong response kind {resp:?}", ctx());
                };
                // Distances must agree (witnesses only differ on ties).
                assert_eq!(got.map(|x| x.0), want.map(|x| x.0), "{}", ctx());
            }
            Request::Cpt { ref terminals } => {
                let Response::Cpt(cpt) = resp else {
                    panic!("{}: wrong response kind {resp:?}", ctx());
                };
                self.check_cpt(terminals, cpt, &ctx());
            }
            _ => unreachable!("update in query replay"),
        }
    }

    /// The compressed tree must preserve pairwise path summaries exactly.
    fn check_cpt(&self, terminals: &[u32], cpt: &CptResult, ctx: &str) {
        let index: HashMap<u32, usize> = cpt
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut adj: Vec<Vec<(usize, PathSummary)>> = vec![Vec::new(); cpt.vertices.len()];
        for &(a, b, p) in &cpt.edges {
            adj[index[&a]].push((index[&b], p));
            adj[index[&b]].push((index[&a], p));
        }
        let combine = |a: &PathSummary, b: &PathSummary| PathSummary {
            sum: a.sum.wrapping_add(b.sum),
            min: match (a.min, b.min) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(if (x.w, x.u, x.v) <= (y.w, y.u, y.v) {
                    x
                } else {
                    y
                }),
            },
            max: match (a.max, b.max) {
                (None, x) | (x, None) => x,
                (Some(x), Some(y)) => Some(if (x.w, x.u, x.v) >= (y.w, y.u, y.v) {
                    x
                } else {
                    y
                }),
            },
        };
        let in_range: Vec<u32> = terminals
            .iter()
            .copied()
            .filter(|&t| self.in_range(t))
            .collect();
        for &a in &in_range {
            for &b in &in_range {
                if a >= b {
                    continue;
                }
                let want = self.expected_extrema(a, b);
                // BFS in the compressed tree.
                let got = (|| {
                    let (sa, sb) = (*index.get(&a)?, *index.get(&b)?);
                    let mut val: Vec<Option<PathSummary>> = vec![None; adj.len()];
                    val[sa] = Some(PathSummary {
                        sum: 0,
                        min: None,
                        max: None,
                    });
                    let mut queue = std::collections::VecDeque::from([sa]);
                    let mut prev = vec![usize::MAX; adj.len()];
                    prev[sa] = sa;
                    while let Some(x) = queue.pop_front() {
                        let vx = val[x].unwrap();
                        for &(y, p) in &adj[x] {
                            if prev[y] == usize::MAX {
                                prev[y] = x;
                                val[y] = Some(combine(&vx, &p));
                                queue.push_back(y);
                            }
                        }
                    }
                    val[sb]
                })();
                assert_eq!(got, want, "{ctx}: cpt pair ({a},{b})");
            }
        }
    }
}

/// Drive `threads` clients over partitioned streams, then replay the
/// commit log against the oracle.
fn run_oracle(cfg: ServeConfig, threads: usize, ops_per_thread: usize, seed: u64) {
    run_oracle_mix(
        cfg,
        threads,
        ops_per_thread,
        seed,
        rcforest::OpMix::balanced(),
    )
}

fn run_oracle_mix(
    cfg: ServeConfig,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
    mix: rcforest::OpMix,
) {
    let stream_cfg = RequestStreamConfig {
        forest: rcforest::ForestGenConfig {
            n: 1_500,
            seed,
            max_weight: 64,
            ..Default::default()
        },
        mix,
        invalid_frac: 0.05,
        cpt_terminals: 6,
        ..Default::default()
    };
    let probe = RequestStream::new_partitioned(stream_cfg.clone(), 0, threads);
    let initial = probe.initial_edges();
    let n = probe.num_vertices();
    let forest = ServeForest::build_edges(n, &initial, rcforest::BuildOptions::default()).unwrap();

    let server = RcServe::start(forest, cfg);
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let client = server.client();
            let scfg = stream_cfg.clone();
            std::thread::spawn(move || {
                let mut stream = RequestStream::new_partitioned(scfg, t, threads);
                let mut served = 0usize;
                // Chunked submission: bursts build big epochs, the waits
                // create cross-epoch dependencies.
                let mut remaining = ops_per_thread;
                while remaining > 0 {
                    let chunk = remaining.min(32);
                    remaining -= chunk;
                    let handles: Vec<_> = (0..chunk)
                        .map(|_| client.submit(Request::from_stream(stream.next_op())))
                        .collect();
                    for h in handles {
                        assert!(h.wait() != Response::Rejected);
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();
    let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, threads * ops_per_thread);

    // The log finishes booking after responses fill; join the worker
    // (shutdown) before draining it.
    let auditor = server.client();
    server.shutdown();
    let log = auditor.take_commit_log();
    assert_eq!(log.len(), total, "every request committed exactly once");

    // Replay: log order is commit order (updates then queries per epoch).
    let mut oracle = Oracle::new(n, &initial);
    let mut epoch = 0u64;
    let mut repr_seen: HashMap<u32, u32> = HashMap::new();
    let mut seen_seqs = std::collections::HashSet::new();
    for entry in &log {
        assert!(seen_seqs.insert(entry.seq), "seq {} duplicated", entry.seq);
        if entry.epoch != epoch {
            epoch = entry.epoch;
            repr_seen.clear();
        }
        if entry.request.is_update() {
            let want = oracle.apply_update(&entry.request);
            assert_eq!(
                entry.response,
                Response::Updated(want.clone()),
                "epoch {} seq {} {:?}",
                entry.epoch,
                entry.seq,
                entry.request
            );
        } else {
            oracle.check_query(entry, &mut repr_seen);
        }
    }
}

#[test]
fn serializability_oracle_eight_threads_coalesced() {
    run_oracle(
        ServeConfig {
            max_linger: Duration::from_micros(300),
            record_commit_log: true,
            ..ServeConfig::default()
        },
        8,
        400,
        2025,
    );
}

#[test]
fn serializability_oracle_tiny_epochs() {
    // Size-bounded epochs force constant drain/requeue traffic.
    run_oracle(
        ServeConfig {
            max_epoch_ops: 24,
            drain_threshold: 8,
            max_linger: Duration::from_micros(50),
            record_commit_log: true,
            ..ServeConfig::default()
        },
        8,
        150,
        77,
    );
}

#[test]
fn serializability_oracle_update_heavy_toggles() {
    // Long linger + update-heavy mix: the same connector edge is routinely
    // cut and relinked (and linked and re-cut) inside one epoch, driving
    // the coalescer's cancellation paths and stale-union-find flushes.
    run_oracle_mix(
        ServeConfig {
            max_linger: Duration::from_millis(2),
            drain_threshold: 2_048,
            record_commit_log: true,
            ..ServeConfig::default()
        },
        8,
        400,
        4242,
        rcforest::OpMix::update_heavy(),
    );
}

#[test]
fn serializability_oracle_unbatched_baseline() {
    run_oracle(
        ServeConfig {
            record_commit_log: true,
            ..ServeConfig::unbatched()
        },
        4,
        80,
        9,
    );
}
