//! Property-style integration tests: canonical change propagation and
//! cross-aggregate consistency on randomized workloads.

use rcforest::naive::NaiveForest;
use rcforest::parlay::rng::SplitMix64;
use rcforest::{BuildOptions, CountAgg, RcForest, SumAgg};

/// Random degree-<=3 forest edits; every round must equal a fresh rebuild.
#[test]
fn propagation_is_canonical_under_long_edit_sequences() {
    let n = 150usize;
    let mut f = RcForest::<SumAgg<i64>>::new(n);
    let mut naive = NaiveForest::<i64>::new(n);
    let mut rng = SplitMix64::new(404);
    for _round in 0..25 {
        let mut links = Vec::new();
        let mut cuts = Vec::new();
        for _ in 0..8 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            if u == v {
                continue;
            }
            if naive.edge_weight(u, v).is_some()
                && !cuts.contains(&(u, v))
                && !cuts.contains(&(v, u))
            {
                cuts.push((u, v));
            }
        }
        for &(u, v) in &cuts {
            naive.cut(u, v).unwrap();
        }
        for _ in 0..8 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            let w = rng.next_below(100) as i64;
            if u != v && naive.degree(u) < 3 && naive.degree(v) < 3 && naive.link(u, v, w).is_ok() {
                links.push((u, v, w));
            }
        }
        f.batch_cut(&cuts).unwrap();
        f.batch_link(&links).unwrap();
        f.validate().unwrap();
        f.assert_matches_fresh_rebuild();
    }
}

/// CountAgg hop counts agree with SumAgg over unit weights — two
/// aggregates over the same structure must tell one story.
#[test]
fn aggregates_are_mutually_consistent() {
    let n = 200usize;
    let mut rng = SplitMix64::new(3);
    let mut unit_edges: Vec<(u32, u32, ())> = Vec::new();
    let mut sum_edges: Vec<(u32, u32, i64)> = Vec::new();
    let mut naive = NaiveForest::<i64>::new(n);
    for v in 1..n as u32 {
        let u = if rng.next_f64() < 0.6 {
            v - 1
        } else {
            rng.next_below(v as u64) as u32
        };
        if naive.degree(u) < 3 && naive.link(u, v, 1).is_ok() {
            unit_edges.push((u, v, ()));
            sum_edges.push((u, v, 1));
        }
    }
    let fc = RcForest::<CountAgg>::build_edges(n, &unit_edges, BuildOptions::default()).unwrap();
    let fs = RcForest::<SumAgg<i64>>::build_edges(n, &sum_edges, BuildOptions::default()).unwrap();
    for _ in 0..200 {
        let u = rng.next_below(n as u64) as u32;
        let v = rng.next_below(n as u64) as u32;
        let hops = fc.path_aggregate(u, v);
        let sum = fs.path_aggregate(u, v);
        assert_eq!(hops.map(|h| h as i64), sum, "({u},{v})");
    }
}
