//! `rcforest` — batch-parallel dynamic trees (facade crate).
//!
//! Re-exports the full public API of the workspace: the RC-tree core
//! (`rc-core`) with its marked-subtree batch query engine
//! ([`MarkedSweep`]) and the [`DynamicForest`] backend trait,
//! arbitrary-degree ternarization (`rc-ternary`), the link-cut tree
//! sequential baseline (`rc-lct`), the forest + request-stream generator
//! (`rc-gen`), incremental MSF (`rc-msf`) and the request-coalescing
//! service layer (`rc-serve`, under [`serve`]). See the README for a
//! tour and the `examples/` directory for runnable scenarios.

pub use rc_core::*;
pub use rc_gen::{
    apply_op, assert_backends_agree, paper_configs, truncation_offsets, Arrival, ChainDist,
    DifferentialReport, ForestGenConfig, GeneratedForest, OpMix, OpResponse, RequestStream,
    RequestStreamConfig, StreamOp,
};
pub use rc_lct::LctForest;
pub use rc_msf::{kruskal, BatchStats, IncrementalMsf, UnionFind};
pub use rc_obs as obs;
pub use rc_parlay as parlay;
pub use rc_repl as repl;
pub use rc_serve as serve;
pub use rc_store as store;
pub use rc_ternary::{TernaryForest, TernaryStdForest};
